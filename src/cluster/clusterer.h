// Pluggable clustering back-ends.
//
// Every partitioning algorithm the compressor can use (k-means, the
// spectral variants, hierarchical average-linkage, and any backend an
// application registers at runtime) implements the Clusterer interface
// and is resolved by name through ClustererRegistry. The compression
// pipeline never names a concrete algorithm: it looks the backend up,
// so new methods plug in without touching src/core/.
#ifndef LOGR_CLUSTER_CLUSTERER_H_
#define LOGR_CLUSTER_CLUSTERER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_pool.h"
#include "workload/feature_vec.h"

namespace logr {

/// Everything a backend needs besides the data itself.
struct ClusterRequest {
  std::size_t k = 1;
  /// Size of the feature universe the sparse vectors index into.
  std::size_t num_features = 0;
  std::uint64_t seed = 17;
  /// Random restarts for k-means style stages.
  int n_init = 4;
  /// Worker pool for data-parallel stages; nullptr selects
  /// ThreadPool::Shared(). Results never depend on the pool size.
  ThreadPool* pool = nullptr;
  /// Optional pre-built packed pool over exactly the same vectors (row i
  /// == vecs[i]), shared so backends skip re-packing. May omit columns;
  /// backends check has_columns() before using the tiled kernel.
  /// Distances derived from it are bit-identical to packing locally.
  const PackedVecPool* packed = nullptr;
};

/// Fitted per-dataset state supporting repeated cuts at different K.
/// Models may reference the vectors/weights passed to Clusterer::Fit and
/// must not outlive them.
class ClusterModel {
 public:
  virtual ~ClusterModel() = default;

  /// Flat assignment (cluster ids dense in [0, k)) for a K-cluster cut.
  virtual std::vector<int> Cut(std::size_t k) = 0;

  /// True when Cut(k+1) always refines Cut(k) (hierarchical backends);
  /// such models make error-target searches a single fit plus cheap cuts.
  virtual bool MonotoneCuts() const { return false; }
};

/// A clustering algorithm over sparse binary feature vectors.
class Clusterer {
 public:
  virtual ~Clusterer() = default;

  /// Registry name (stable; used in options files and CLIs).
  virtual const char* Name() const = 0;

  /// Partitions `vecs` into `req.k` clusters. `weights` is empty
  /// (uniform) or one non-negative weight per vector. Returns one
  /// cluster id per input index, dense in [0, k).
  virtual std::vector<int> Cluster(const std::vector<FeatureVec>& vecs,
                                   const std::vector<double>& weights,
                                   const ClusterRequest& req) const = 0;

  /// Fits reusable state for repeated cuts. The default adapter simply
  /// re-runs Cluster for every requested K; hierarchical backends
  /// override it with a dendrogram-backed model (MonotoneCuts() == true).
  virtual std::unique_ptr<ClusterModel> Fit(
      const std::vector<FeatureVec>& vecs, const std::vector<double>& weights,
      const ClusterRequest& req) const;
};

/// Process-wide name -> backend table. Thread-safe. The five built-in
/// backends ("KmeansEuclidean" a.k.a. "kmeans", "manhattan", "minkowski",
/// "hamming", "hierarchical") are registered on first access.
class ClustererRegistry {
 public:
  static ClustererRegistry& Instance();

  /// Registers `impl` under `name`. Returns false (and keeps the existing
  /// entry) when the name is already taken.
  bool Register(const std::string& name, std::shared_ptr<Clusterer> impl);

  /// Registers `alias` as another name for an existing backend.
  bool RegisterAlias(const std::string& alias, const std::string& name);

  /// The backend registered under `name`, or nullptr.
  const Clusterer* Find(const std::string& name) const;

  /// All registered names (aliases included), sorted.
  std::vector<std::string> Names() const;

 private:
  ClustererRegistry();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace logr

#endif  // LOGR_CLUSTER_CLUSTERER_H_
