// Agglomerative hierarchical clustering with average linkage
// (paper Sec. 6.1.1 [29]).
//
// Unlike k-means/spectral, the dendrogram yields *monotone* cluster
// assignments: cutting at K+1 always refines the cut at K, giving
// monotone Error/Verbosity trade-off control. Implemented with the
// nearest-neighbor-chain algorithm (O(N^2) time, exact for reducible
// linkages such as weighted average linkage).
#ifndef LOGR_CLUSTER_HIERARCHICAL_H_
#define LOGR_CLUSTER_HIERARCHICAL_H_

#include <vector>

#include "cluster/distance.h"

namespace logr {

/// A full merge tree over N leaves. Merge i combines nodes `a[i]` and
/// `b[i]` (node ids: 0..N-1 = leaves, N+i = result of merge i) at height
/// `height[i]`, in non-decreasing height order after reordering.
struct Dendrogram {
  std::size_t num_leaves = 0;
  std::vector<int> merge_a;
  std::vector<int> merge_b;
  std::vector<double> height;

  /// Flat assignment for a K-cluster cut (the K-1 highest merges undone).
  /// Cluster ids are dense in [0, K).
  std::vector<int> CutToK(std::size_t k) const;
};

/// Average-linkage agglomeration from a pairwise distance matrix.
/// `weights` (optional) give leaf masses for the weighted average.
///
/// The fast path of the NN-chain algorithm: a per-slot cached-nearest
/// array (lazily invalidated when a slot's cached neighbor merges) makes
/// most nearest() calls O(1), and the remaining full scans plus the
/// Lance-Williams row updates run across `pool` (nullptr = serial).
/// Bit-identical to AgglomerativeAverageLinkageReference for every pool
/// size: the cache is exact (deterministic index tie-breaks preserved)
/// and all parallel stages write index-addressed slots with serial,
/// index-ordered reductions.
Dendrogram AgglomerativeAverageLinkage(const Matrix& distances,
                                       const std::vector<double>& weights,
                                       ThreadPool* pool = nullptr);

/// The original serial NN-chain (full nearest scans, no cache). Kept as
/// the bit-identity reference for tests and benches.
Dendrogram AgglomerativeAverageLinkageReference(
    const Matrix& distances, const std::vector<double>& weights);

}  // namespace logr

#endif  // LOGR_CLUSTER_HIERARCHICAL_H_
