#include "cluster/spectral.h"

#include <algorithm>
#include <cmath>

#include "linalg/symmetric_eigen.h"
#include "util/check.h"

namespace logr {

double MedianNonzeroDistance(const Matrix& dist, ThreadPool* pool) {
  const std::size_t count = dist.rows();
  // Row-parallel gather of the nonzero upper-triangle entries: count per
  // row, prefix-sum the offsets, then fill each row's slice. The filled
  // array is identical for any schedule, so nth_element sees the same
  // multiset (and the same memory layout) every time.
  std::vector<std::size_t> row_count(count, 0);
  ParallelFor(pool, 0, count, [&](std::size_t i) {
    std::size_t c = 0;
    for (std::size_t j = i + 1; j < count; ++j) {
      if (dist(i, j) > 0.0) ++c;
    }
    row_count[i] = c;
  });
  std::vector<std::size_t> offset(count + 1, 0);
  for (std::size_t i = 0; i < count; ++i) {
    offset[i + 1] = offset[i] + row_count[i];
  }
  std::vector<double> nonzero(offset[count]);
  ParallelFor(pool, 0, count, [&](std::size_t i) {
    std::size_t at = offset[i];
    for (std::size_t j = i + 1; j < count; ++j) {
      if (dist(i, j) > 0.0) nonzero[at++] = dist(i, j);
    }
  });
  if (nonzero.empty()) return 1.0;
  std::nth_element(nonzero.begin(), nonzero.begin() + nonzero.size() / 2,
                   nonzero.end());
  double sigma = nonzero[nonzero.size() / 2];
  return sigma > 0.0 ? sigma : 1.0;
}

Matrix GaussianAffinity(const Matrix& dist, double sigma, Vector* degree,
                        ThreadPool* pool) {
  const std::size_t count = dist.rows();
  Matrix w(count, count);
  degree->assign(count, 0.0);
  const double inv = 1.0 / (2.0 * sigma * sigma);
  ParallelFor(pool, 0, count, [&](std::size_t i) {
    double deg = 0.0;
    for (std::size_t j = 0; j < count; ++j) {
      double a = (i == j) ? 1.0 : std::exp(-dist(i, j) * dist(i, j) * inv);
      w(i, j) = a;
      deg += a;
    }
    (*degree)[i] = deg;
  });
  return w;
}

ClusteringResult SpectralCluster(const std::vector<FeatureVec>& vecs,
                                 const std::vector<double>& weights,
                                 std::size_t n,
                                 const SpectralOptions& opts) {
  const std::size_t count = vecs.size();
  LOGR_CHECK(count > 0 && opts.k >= 1);
  const std::size_t k = std::min(opts.k, count);
  if (k == 1 || count == 1) {
    ClusteringResult r;
    r.assignment.assign(count, 0);
    r.k = 1;
    return r;
  }

  ThreadPool* pool = opts.pool ? opts.pool : ThreadPool::Shared();

  // Pairwise distances (packed kernel) and median bandwidth. A shared
  // pool skips the re-pack; the distances are identical either way.
  Matrix dist = (opts.packed && opts.packed->has_columns())
                    ? DistanceMatrix(*opts.packed, opts.distance, pool)
                    : DistanceMatrix(vecs, n, opts.distance, pool);
  double sigma = opts.sigma;
  if (sigma <= 0.0) sigma = MedianNonzeroDistance(dist, pool);

  // Gaussian affinity and degree.
  Vector degree;
  Matrix w = GaussianAffinity(dist, sigma, &degree, pool);
  // Normalized affinity M = D^{-1/2} W D^{-1/2}; its top-k eigenvectors
  // equal the bottom-k of the symmetric normalized Laplacian.
  Vector dinv_sqrt(count);
  for (std::size_t i = 0; i < count; ++i) {
    LOGR_CHECK(degree[i] > 0.0);
    dinv_sqrt[i] = 1.0 / std::sqrt(degree[i]);
  }
  auto matvec = [&](const Vector& x, Vector* y) {
    Vector scaled(count);
    for (std::size_t i = 0; i < count; ++i) scaled[i] = x[i] * dinv_sqrt[i];
    Vector wx = w.MatVec(scaled);
    y->resize(count);
    for (std::size_t i = 0; i < count; ++i) (*y)[i] = wx[i] * dinv_sqrt[i];
  };

  EigenResult eig = LanczosLargest(matvec, count, k, opts.seed);
  const std::size_t found = eig.eigenvectors.size();
  LOGR_CHECK(found >= 1);

  // Row-normalized spectral embedding.
  std::vector<Vector> embedding(count, Vector(found, 0.0));
  for (std::size_t i = 0; i < count; ++i) {
    double norm = 0.0;
    for (std::size_t c = 0; c < found; ++c) {
      double v = eig.eigenvectors[c][i];
      embedding[i][c] = v;
      norm += v * v;
    }
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (double& v : embedding[i]) v /= norm;
    }
  }

  KMeansOptions km;
  km.k = k;
  km.seed = opts.seed;
  km.n_init = opts.n_init;
  km.pool = pool;
  ClusteringResult r = KMeansDense(embedding, weights, km);
  r.k = k;
  return r;
}

}  // namespace logr
