// XOR + popcount accumulation kernels for the tiled distance sweep.
//
// The packed DistanceMatrix inner loop is, for one packed row and a
// j-slice of the word-major column planes:
//
//   acc[j] += Σ_{t < n_nzw, w = nzw[t]}
//               popcount(row[w] ^ cols[w*stride + j]) - pcc[w*stride + j]
//
// i.e. each kernel call sweeps ALL of the row's nonzero words over the
// slice, not one word at a time. That shape lets the SIMD kernels keep
// the int32 accumulators in vector registers across the whole word
// loop — one acc load + store per j-block instead of one per (word,
// j-block) — and costs exactly one indirect call per (tile, row).
//
// All kernels compute the same exact integers (int32 adds of exact
// popcounts, associative and commutative), so swapping kernels never
// changes a distance, only how fast the sweep runs. The scalar kernel
// is the always-on reference; the AVX2 (vpshufb nibble-LUT popcount,
// 8 lanes per step) and AVX-512 (vpopcntdq, 16 lanes per step) kernels
// live in their own translation units compiled with the matching -m
// flags, and runtime CPUID dispatch picks the widest one the CPU
// supports (util/cpu_features.h). LOGR_FORCE_SCALAR=1 pins the choice
// to scalar.
#ifndef LOGR_CLUSTER_XOR_POPCOUNT_H_
#define LOGR_CLUSTER_XOR_POPCOUNT_H_

#include <cstdint>
#include <cstddef>

namespace logr {

/// For j in [0, len):
///   acc[j] += Σ over t in [0, n_nzw), w = nzw[t], of
///             popcount(row[w] ^ cols[w*stride + j]) - pcc[w*stride + j]
/// `cols`/`pcc` point at the j-origin of the word-0 column plane; plane
/// w lives `w*stride` further in (PackedVecPool's word-major layout).
using XorPopcountAccumFn = void (*)(const std::uint64_t* row,
                                    const std::uint32_t* nzw,
                                    std::size_t n_nzw,
                                    const std::uint64_t* cols,
                                    const std::uint8_t* pcc,
                                    std::size_t stride, std::int32_t* acc,
                                    std::size_t len);

/// Portable reference kernel (one popcount per element, word-major
/// order).
void XorPopcountAccumScalar(const std::uint64_t* row,
                            const std::uint32_t* nzw, std::size_t n_nzw,
                            const std::uint64_t* cols,
                            const std::uint8_t* pcc, std::size_t stride,
                            std::int32_t* acc, std::size_t len);

/// AVX2 kernel: vpshufb nibble-LUT popcount, 8 accumulator lanes per
/// step, accumulators register-resident across the word loop. Falls
/// back to the scalar body when its TU was compiled without AVX2
/// (XorPopcountAvx2Compiled() reports which).
void XorPopcountAccumAvx2(const std::uint64_t* row, const std::uint32_t* nzw,
                          std::size_t n_nzw, const std::uint64_t* cols,
                          const std::uint8_t* pcc, std::size_t stride,
                          std::int32_t* acc, std::size_t len);
bool XorPopcountAvx2Compiled();

/// AVX-512 kernel: vpopcntdq, 16 accumulator lanes per step,
/// accumulators register-resident across the word loop. Same fallback
/// contract as the AVX2 kernel.
void XorPopcountAccumAvx512(const std::uint64_t* row,
                            const std::uint32_t* nzw, std::size_t n_nzw,
                            const std::uint64_t* cols,
                            const std::uint8_t* pcc, std::size_t stride,
                            std::int32_t* acc, std::size_t len);
bool XorPopcountAvx512Compiled();

enum class PopcountKernel { kScalar, kAvx2, kAvx512 };

/// Kernel picked for this process: the widest one both compiled in and
/// reported by CPUID, unless LOGR_FORCE_SCALAR pins scalar. Decided
/// once and cached.
PopcountKernel SelectedPopcountKernel();

/// "scalar" / "avx2" / "avx512" — for bench output and logs.
const char* PopcountKernelName(PopcountKernel k);

/// The function pointer for SelectedPopcountKernel().
XorPopcountAccumFn SelectedXorPopcountAccum();

}  // namespace logr

#endif  // LOGR_CLUSTER_XOR_POPCOUNT_H_
