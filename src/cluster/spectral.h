// Spectral clustering (Ng-Jordan-Weiss style, paper Sec. 6.1 [31]).
//
// Pipeline: pairwise distances under the chosen metric -> Gaussian
// affinity with a median-distance bandwidth -> symmetric-normalized
// affinity D^{-1/2} W D^{-1/2} -> k leading eigenvectors via Lanczos ->
// row-normalized embedding -> weighted k-means.
#ifndef LOGR_CLUSTER_SPECTRAL_H_
#define LOGR_CLUSTER_SPECTRAL_H_

#include "cluster/distance.h"
#include "cluster/kmeans.h"

namespace logr {

struct SpectralOptions {
  std::size_t k = 1;
  DistanceSpec distance;
  /// Gaussian kernel bandwidth; 0 selects the median pairwise distance.
  double sigma = 0.0;
  std::uint64_t seed = 17;
  /// Restarts for the embedded k-means stage.
  int n_init = 4;
  /// Pool for the distance and k-means stages; nullptr selects
  /// ThreadPool::Shared(). Results never depend on the pool size.
  ThreadPool* pool = nullptr;
  /// Optional shared packed pool (with columns) over exactly the input
  /// vectors; the affinity stage reads its distance matrix instead of
  /// re-packing. Bit-identical either way.
  const PackedVecPool* packed = nullptr;
};

/// Spectral clustering of sparse binary vectors in an n-feature universe.
ClusteringResult SpectralCluster(const std::vector<FeatureVec>& vecs,
                                 const std::vector<double>& weights,
                                 std::size_t n, const SpectralOptions& opts);

/// Median nonzero off-diagonal distance — the default Gaussian bandwidth.
/// Returns 1.0 when every pairwise distance is zero. The gather runs
/// row-parallel into precomputed offsets, so the collected multiset (and
/// therefore the median) is identical for any pool size.
double MedianNonzeroDistance(const Matrix& dist, ThreadPool* pool);

/// Gaussian affinity W(i, j) = exp(-d(i,j)^2 / (2 sigma^2)) with unit
/// diagonal, plus the row-sum degree vector. Row-parallel: each row and
/// its degree entry are written by one iteration, accumulated in
/// ascending j order, so results are bit-identical for any pool size.
Matrix GaussianAffinity(const Matrix& dist, double sigma, Vector* degree,
                        ThreadPool* pool);

}  // namespace logr

#endif  // LOGR_CLUSTER_SPECTRAL_H_
