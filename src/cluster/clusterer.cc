#include "cluster/clusterer.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "cluster/distance.h"
#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "cluster/spectral.h"
#include "util/check.h"

namespace logr {

namespace {

/// Default ClusterModel: no reusable state, every cut re-clusters.
class RefitModel : public ClusterModel {
 public:
  RefitModel(const Clusterer* impl, const std::vector<FeatureVec>* vecs,
             const std::vector<double>* weights, ClusterRequest req)
      : impl_(impl), vecs_(vecs), weights_(weights), req_(req) {}

  std::vector<int> Cut(std::size_t k) override {
    ClusterRequest req = req_;
    req.k = k;
    return impl_->Cluster(*vecs_, *weights_, req);
  }

 private:
  const Clusterer* impl_;
  const std::vector<FeatureVec>* vecs_;
  const std::vector<double>* weights_;
  ClusterRequest req_;
};

class KMeansClusterer : public Clusterer {
 public:
  const char* Name() const override { return "KmeansEuclidean"; }

  std::vector<int> Cluster(const std::vector<FeatureVec>& vecs,
                           const std::vector<double>& weights,
                           const ClusterRequest& req) const override {
    KMeansOptions km;
    km.k = req.k;
    km.seed = req.seed;
    km.n_init = req.n_init;
    km.pool = req.pool;
    km.packed = req.packed;
    return KMeansSparse(vecs, weights, req.num_features, km).assignment;
  }
};

class SpectralClusterer : public Clusterer {
 public:
  SpectralClusterer(const char* name, DistanceSpec spec)
      : name_(name), spec_(spec) {}

  const char* Name() const override { return name_; }

  std::vector<int> Cluster(const std::vector<FeatureVec>& vecs,
                           const std::vector<double>& weights,
                           const ClusterRequest& req) const override {
    SpectralOptions so;
    so.k = req.k;
    so.seed = req.seed;
    so.n_init = req.n_init;
    so.distance = spec_;
    so.pool = req.pool;
    so.packed = req.packed;
    return SpectralCluster(vecs, weights, req.num_features, so).assignment;
  }

 private:
  const char* name_;
  DistanceSpec spec_;
};

/// Dendrogram-backed model: one agglomeration serves every K.
class DendrogramModel : public ClusterModel {
 public:
  explicit DendrogramModel(Dendrogram dg) : dg_(std::move(dg)) {}

  std::vector<int> Cut(std::size_t k) override { return dg_.CutToK(k); }
  bool MonotoneCuts() const override { return true; }

 private:
  Dendrogram dg_;
};

class HierarchicalClusterer : public Clusterer {
 public:
  const char* Name() const override { return "hierarchical"; }

  std::vector<int> Cluster(const std::vector<FeatureVec>& vecs,
                           const std::vector<double>& weights,
                           const ClusterRequest& req) const override {
    return Fit(vecs, weights, req)->Cut(req.k);
  }

  std::unique_ptr<ClusterModel> Fit(
      const std::vector<FeatureVec>& vecs, const std::vector<double>& weights,
      const ClusterRequest& req) const override {
    DistanceSpec spec;
    spec.metric = Metric::kHamming;
    // Honor the ClusterRequest contract: nullptr means the shared pool,
    // not the serial path (which nullptr selects in DistanceMatrix).
    ThreadPool* pool = req.pool ? req.pool : ThreadPool::Shared();
    Matrix d = (req.packed && req.packed->has_columns())
                   ? DistanceMatrix(*req.packed, spec, pool)
                   : DistanceMatrix(vecs, req.num_features, spec, pool);
    return std::make_unique<DendrogramModel>(
        AgglomerativeAverageLinkage(d, weights, pool));
  }
};

}  // namespace

std::unique_ptr<ClusterModel> Clusterer::Fit(
    const std::vector<FeatureVec>& vecs, const std::vector<double>& weights,
    const ClusterRequest& req) const {
  return std::make_unique<RefitModel>(this, &vecs, &weights, req);
}

struct ClustererRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::shared_ptr<Clusterer>> backends;
};

ClustererRegistry::ClustererRegistry() : impl_(new Impl) {
  auto add = [this](std::shared_ptr<Clusterer> c) {
    impl_->backends.emplace(c->Name(), std::move(c));
  };
  add(std::make_shared<KMeansClusterer>());
  DistanceSpec manhattan;
  manhattan.metric = Metric::kManhattan;
  add(std::make_shared<SpectralClusterer>("manhattan", manhattan));
  DistanceSpec minkowski;
  minkowski.metric = Metric::kMinkowski;
  minkowski.p = 4.0;
  add(std::make_shared<SpectralClusterer>("minkowski", minkowski));
  DistanceSpec hamming;
  hamming.metric = Metric::kHamming;
  add(std::make_shared<SpectralClusterer>("hamming", hamming));
  add(std::make_shared<HierarchicalClusterer>());
  impl_->backends.emplace("kmeans", impl_->backends.at("KmeansEuclidean"));
}

ClustererRegistry& ClustererRegistry::Instance() {
  static ClustererRegistry* registry = new ClustererRegistry();
  return *registry;
}

bool ClustererRegistry::Register(const std::string& name,
                                 std::shared_ptr<Clusterer> impl) {
  LOGR_CHECK(impl != nullptr);
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->backends.emplace(name, std::move(impl)).second;
}

bool ClustererRegistry::RegisterAlias(const std::string& alias,
                                      const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->backends.find(name);
  if (it == impl_->backends.end()) return false;
  return impl_->backends.emplace(alias, it->second).second;
}

const Clusterer* ClustererRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->backends.find(name);
  return it == impl_->backends.end() ? nullptr : it->second.get();
}

std::vector<std::string> ClustererRegistry::Names() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> names;
  names.reserve(impl_->backends.size());
  for (const auto& entry : impl_->backends) names.push_back(entry.first);
  return names;
}

}  // namespace logr
