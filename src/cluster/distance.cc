#include "cluster/distance.h"

#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace logr {

std::string DistanceSpec::Name() const {
  switch (metric) {
    case Metric::kEuclidean: return "euclidean";
    case Metric::kManhattan: return "manhattan";
    case Metric::kMinkowski: return StrFormat("minkowski(p=%.0f)", p);
    case Metric::kHamming: return "hamming";
    case Metric::kChebyshev: return "chebyshev";
    case Metric::kCanberra: return "canberra";
  }
  return "?";
}

std::size_t SymmetricDifference(const FeatureVec& a, const FeatureVec& b) {
  std::size_t inter = a.IntersectionSize(b);
  return a.size() + b.size() - 2 * inter;
}

double Distance(const FeatureVec& a, const FeatureVec& b, std::size_t n,
                const DistanceSpec& spec) {
  double diff = static_cast<double>(SymmetricDifference(a, b));
  switch (spec.metric) {
    case Metric::kEuclidean:
      return std::sqrt(diff);
    case Metric::kManhattan:
      return diff;
    case Metric::kMinkowski:
      LOGR_DCHECK(spec.p >= 1.0);
      return std::pow(diff, 1.0 / spec.p);
    case Metric::kHamming:
      // count(x != y) / (count(x != y) + count(x == y)) over all n
      // coordinates — the paper's normalized Hamming distance.
      LOGR_CHECK(n > 0);
      return diff / static_cast<double>(n);
    case Metric::kChebyshev:
      // Max per-coordinate difference of 0/1 vectors: 0 or 1.
      return diff > 0.0 ? 1.0 : 0.0;
    case Metric::kCanberra:
      // Per-coordinate |x-y|/(|x|+|y|) is 1 where the vectors differ and
      // 0 elsewhere (0/0 := 0), so Canberra equals the unnormalized
      // Hamming count on binary data.
      return diff;
  }
  return 0.0;
}

Matrix DistanceMatrix(const std::vector<FeatureVec>& vecs, std::size_t n,
                      const DistanceSpec& spec) {
  return DistanceMatrix(vecs, n, spec, ThreadPool::Shared());
}

Matrix DistanceMatrix(const std::vector<FeatureVec>& vecs, std::size_t n,
                      const DistanceSpec& spec, ThreadPool* pool) {
  const std::size_t count = vecs.size();
  Matrix d(count, count);
  // Row-parallel over the upper triangle; rows write disjoint entries
  // ((i, j) and its mirror (j, i) with j > i), so any schedule produces
  // the same matrix.
  ParallelFor(pool, 0, count, [&](std::size_t i) {
    for (std::size_t j = i + 1; j < count; ++j) {
      double v = Distance(vecs[i], vecs[j], n, spec);
      d(i, j) = v;
      d(j, i) = v;
    }
  });
  return d;
}

}  // namespace logr
