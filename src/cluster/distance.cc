#include "cluster/distance.h"

#include <cmath>

#include "cluster/xor_popcount.h"
#include "util/check.h"
#include "util/string_util.h"

namespace logr {

namespace {

/// Upper bound on the packed pool's footprint (u64 words). 1 GiB: far
/// above any workload the repo ships, low enough that a degenerate
/// universe (millions of features x many vectors) falls back to the
/// merge kernel instead of allocating absurdly.
constexpr std::size_t kPackedBudgetWords = std::size_t{1} << 27;

/// Tile edge for the block-tiled pairwise schedule. 128x128 tiles are
/// big enough that per-tile dispatch overhead vanishes and small enough
/// that the upper triangle splits into many near-equal work units, so
/// the pool's dynamic claiming stays load-balanced (unlike row
/// parallelism, where row i carries count-i columns).
constexpr std::size_t kTile = 128;

}  // namespace

std::string DistanceSpec::Name() const {
  switch (metric) {
    case Metric::kEuclidean: return "euclidean";
    case Metric::kManhattan: return "manhattan";
    case Metric::kMinkowski: return StrFormat("minkowski(p=%.0f)", p);
    case Metric::kHamming: return "hamming";
    case Metric::kChebyshev: return "chebyshev";
    case Metric::kCanberra: return "canberra";
  }
  return "?";
}

std::size_t SymmetricDifference(const FeatureVec& a, const FeatureVec& b) {
  std::size_t inter = a.IntersectionSize(b);
  return a.size() + b.size() - 2 * inter;
}

double DistanceFromSymmetricDifference(std::size_t count, std::size_t n,
                                       const DistanceSpec& spec) {
  double diff = static_cast<double>(count);
  switch (spec.metric) {
    case Metric::kEuclidean:
      return std::sqrt(diff);
    case Metric::kManhattan:
      return diff;
    case Metric::kMinkowski:
      LOGR_DCHECK(spec.p >= 1.0);
      return std::pow(diff, 1.0 / spec.p);
    case Metric::kHamming:
      // count(x != y) / (count(x != y) + count(x == y)) over all n
      // coordinates — the paper's normalized Hamming distance.
      LOGR_CHECK(n > 0);
      return diff / static_cast<double>(n);
    case Metric::kChebyshev:
      // Max per-coordinate difference of 0/1 vectors: 0 or 1.
      return diff > 0.0 ? 1.0 : 0.0;
    case Metric::kCanberra:
      // Per-coordinate |x-y|/(|x|+|y|) is 1 where the vectors differ and
      // 0 elsewhere (0/0 := 0), so Canberra equals the unnormalized
      // Hamming count on binary data.
      return diff;
  }
  return 0.0;
}

double Distance(const FeatureVec& a, const FeatureVec& b, std::size_t n,
                const DistanceSpec& spec) {
  return DistanceFromSymmetricDifference(SymmetricDifference(a, b), n, spec);
}

bool PackedPoolFits(std::size_t count, std::size_t n,
                    bool with_columns) {
  return PackedVecPool::StorageWords(count, n, with_columns) <=
         kPackedBudgetWords;
}

Matrix DistanceMatrix(const std::vector<FeatureVec>& vecs, std::size_t n,
                      const DistanceSpec& spec) {
  return DistanceMatrix(vecs, n, spec, ThreadPool::Shared());
}

Matrix DistanceMatrix(const std::vector<FeatureVec>& vecs, std::size_t n,
                      const DistanceSpec& spec, ThreadPool* pool) {
  if (!PackedPoolFits(vecs.size(), n)) {
    return DistanceMatrixMerge(vecs, n, spec, pool);
  }
  PackedVecPool packed(vecs, n);
  return DistanceMatrix(packed, spec, pool);
}

Matrix DistanceMatrix(const PackedVecPool& packed, const DistanceSpec& spec,
                      ThreadPool* pool) {
  const std::size_t count = packed.size();
  const std::size_t n = packed.num_features();
  Matrix d(count, count);
  if (count < 2) return d;
  // The tiled kernel sweeps the transposed column planes.
  LOGR_CHECK(packed.has_columns());

  // A diff count never exceeds bits(i) + bits(j), so the metric mapping
  // collapses to a table lookup — entries computed by the very function
  // the merge kernel calls per pair, so the values stay bit-identical
  // while the per-pair sqrt/pow/divide vanishes.
  std::vector<double> lut(2 * packed.MaxSetBits() + 1);
  for (std::size_t c = 0; c < lut.size(); ++c) {
    lut[c] = DistanceFromSymmetricDifference(c, n, spec);
  }

  // Balanced block-tiled schedule over the upper triangle: every tile is
  // (at most) kTile x kTile entries of comparable cost, so dynamic block
  // claiming never strands a worker on one long row. Each (i, j) entry
  // and its mirror are written by exactly one tile, so any schedule
  // produces the same matrix.
  // Resolved once per matrix: the widest xor+popcount kernel the CPU
  // supports (or scalar under LOGR_FORCE_SCALAR). Every kernel computes
  // the same exact integers, so the choice never affects the output.
  const XorPopcountAccumFn accum = SelectedXorPopcountAccum();

  const std::size_t num_tiles = (count + kTile - 1) / kTile;
  std::vector<std::pair<std::size_t, std::size_t>> tiles;
  tiles.reserve(num_tiles * (num_tiles + 1) / 2);
  for (std::size_t bi = 0; bi < num_tiles; ++bi) {
    for (std::size_t bj = bi; bj < num_tiles; ++bj) {
      tiles.emplace_back(bi, bj);
    }
  }
  ParallelFor(pool, 0, tiles.size(), [&](std::size_t t) {
    const std::size_t i_lo = tiles[t].first * kTile;
    const std::size_t i_hi = std::min(count, i_lo + kTile);
    const std::size_t j_lo = tiles[t].second * kTile;
    const std::size_t j_hi = std::min(count, j_lo + kTile);
    std::int32_t acc[kTile];
    // The mirror entries d(j, i) of this tile, staged transposed
    // ([j - j_lo][i - i_lo]) in a cache-resident buffer. Writing them
    // straight into d would stride by a full matrix row per j — one
    // cache-line miss per entry, which profiling shows costs more than
    // the popcount sweep itself. Staged here and flushed row-wise
    // below, both matrix write streams are sequential.
    std::vector<double> mirror(kTile * kTile);
    for (std::size_t i = i_lo; i < i_hi; ++i) {
      // Row i's nonzero words drive the whole tile row (~|q| visited
      // words per pair regardless of universe width), and one kernel
      // call sweeps all of them over the j slice of the transposed
      // columns — sequential loads, one precomputed popcount per word,
      // accumulators register-resident across the word loop:
      //   diff(i, j) = bits(j) + Σ_w [pc(row_i[w]^col_w[j]) - pc(col_w[j])]
      const std::size_t j_beg = std::max(i + 1, j_lo);
      if (j_beg >= j_hi) continue;
      for (std::size_t j = j_beg; j < j_hi; ++j) {
        acc[j - j_beg] = static_cast<std::int32_t>(packed.SetBits(j));
      }
      accum(packed.Row(i), packed.WordIndices(i), packed.NumWordIndices(i),
            packed.Column(0) + j_beg, packed.ColumnPopcount(0) + j_beg,
            count, acc, j_hi - j_beg);
      double* drow = &d(i, j_beg);
      double* mcol = mirror.data() + (j_beg - j_lo) * kTile + (i - i_lo);
      for (std::size_t j = j_beg; j < j_hi; ++j) {
        const double v = lut[static_cast<std::size_t>(acc[j - j_beg])];
        drow[j - j_beg] = v;
        mcol[(j - j_beg) * kTile] = v;
      }
    }
    // Flush the staged mirror block: for each j, its valid i range is
    // [i_lo, min(j, i_hi)) — the whole tile edge off the diagonal, a
    // shrinking prefix on it.
    for (std::size_t j = j_lo; j < j_hi; ++j) {
      const std::size_t i_end = std::min(j, i_hi);
      if (i_end <= i_lo) continue;
      const double* src = mirror.data() + (j - j_lo) * kTile;
      double* dst = &d(j, i_lo);
      for (std::size_t o = 0; o < i_end - i_lo; ++o) dst[o] = src[o];
    }
  });
  return d;
}

Matrix DistanceMatrixMerge(const std::vector<FeatureVec>& vecs,
                           std::size_t n, const DistanceSpec& spec,
                           ThreadPool* pool) {
  const std::size_t count = vecs.size();
  Matrix d(count, count);
  // Row-parallel over the upper triangle; rows write disjoint entries
  // ((i, j) and its mirror (j, i) with j > i), so any schedule produces
  // the same matrix.
  ParallelFor(pool, 0, count, [&](std::size_t i) {
    for (std::size_t j = i + 1; j < count; ++j) {
      double v = Distance(vecs[i], vecs[j], n, spec);
      d(i, j) = v;
      d(j, i) = v;
    }
  });
  return d;
}

std::vector<double> DistancePairs(
    const PackedVecPool& packed,
    const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
    const DistanceSpec& spec, ThreadPool* pool) {
  std::vector<double> out(pairs.size());
  ParallelFor(pool, 0, pairs.size(), [&](std::size_t p) {
    out[p] = DistanceFromSymmetricDifference(
        packed.SymmetricDifference(pairs[p].first, pairs[p].second),
        packed.num_features(), spec);
  });
  return out;
}

}  // namespace logr
