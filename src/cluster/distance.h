// Distance measures over binary sparse feature vectors (paper Sec. 6.1).
//
// The paper evaluates KMeans with Euclidean distance and Spectral
// clustering with Manhattan, Minkowski (p=4) and Hamming distances, and
// mentions Chebyshev and Canberra as also-rans. On 0/1 vectors every one
// of these is a function of the symmetric-difference count, which both
// kernels exploit:
//
//  - the sparse merge kernel walks two sorted id lists
//    (SymmetricDifference over FeatureVecs — the reference path), and
//  - the packed kernel XOR+popcounts dense u64 blocks (PackedVecPool),
//    which is what DistanceMatrix and DistancePairs run on.
//
// Both produce the same exact integer, so every derived metric is
// bit-identical between them.
#ifndef LOGR_CLUSTER_DISTANCE_H_
#define LOGR_CLUSTER_DISTANCE_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "util/thread_pool.h"
#include "workload/feature_vec.h"

namespace logr {

enum class Metric {
  kEuclidean,
  kManhattan,
  kMinkowski,  // l_p, parameterized by DistanceSpec::p
  kHamming,    // count(x != y) / n  (paper's normalized form)
  kChebyshev,
  kCanberra,
};

struct DistanceSpec {
  Metric metric = Metric::kEuclidean;
  double p = 4.0;  // Minkowski order (paper uses p = 4)

  std::string Name() const;
};

/// Number of coordinates on which `a` and `b` differ (sparse merge
/// kernel — the packed pool computes the identical integer).
std::size_t SymmetricDifference(const FeatureVec& a, const FeatureVec& b);

/// Maps an exact symmetric-difference count to the metric value. Shared
/// by the merge and packed kernels, so the two are bit-identical by
/// construction.
double DistanceFromSymmetricDifference(std::size_t diff, std::size_t n,
                                       const DistanceSpec& spec);

/// Distance between two binary sparse vectors in an `n`-feature universe.
double Distance(const FeatureVec& a, const FeatureVec& b, std::size_t n,
                const DistanceSpec& spec);

/// Full pairwise distance matrix of `vecs`, computed across the shared
/// thread pool (LOGR_THREADS workers). Packs the vectors once into a
/// PackedVecPool and schedules balanced upper-triangle tiles over the
/// pool; falls back to the merge kernel when packing would exceed its
/// memory budget. Bit-identical to DistanceMatrixMerge for any pool.
Matrix DistanceMatrix(const std::vector<FeatureVec>& vecs, std::size_t n,
                      const DistanceSpec& spec);

/// As above but on an explicit pool; `pool == nullptr` runs serially.
Matrix DistanceMatrix(const std::vector<FeatureVec>& vecs, std::size_t n,
                      const DistanceSpec& spec, ThreadPool* pool);

/// Pairwise distance matrix over an already-packed pool (callers that
/// keep the pool alive across stages skip re-packing). The pool must
/// have been built with columns (the default).
Matrix DistanceMatrix(const PackedVecPool& packed, const DistanceSpec& spec,
                      ThreadPool* pool);

/// Reference merge-kernel matrix (row-parallel upper triangle). Kept as
/// the bit-identity baseline for tests and benches; DistanceMatrix is
/// the fast path.
Matrix DistanceMatrixMerge(const std::vector<FeatureVec>& vecs,
                           std::size_t n, const DistanceSpec& spec,
                           ThreadPool* pool);

/// Distances for an explicit (i, j) pair list over a packed pool,
/// for callers that need scattered pairs without materializing a full
/// matrix (k-means seeding reads the pool's SymmetricDifference
/// directly since its pairs share one endpoint). out[p] =
/// distance(pairs[p]). Works on pools built without columns.
std::vector<double> DistancePairs(
    const PackedVecPool& packed,
    const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
    const DistanceSpec& spec, ThreadPool* pool);

/// True when packing `count` vectors over `n` features fits the packed
/// kernel's memory budget; the matrix/pair entry points consult this and
/// callers embedding a PackedVecPool of their own should too. Pass
/// `with_columns = false` when the pool will skip the transposed
/// planes — the budget then charges only the row-major data.
bool PackedPoolFits(std::size_t count, std::size_t n,
                    bool with_columns = true);

}  // namespace logr

#endif  // LOGR_CLUSTER_DISTANCE_H_
