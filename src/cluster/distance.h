// Distance measures over binary sparse feature vectors (paper Sec. 6.1).
//
// The paper evaluates KMeans with Euclidean distance and Spectral
// clustering with Manhattan, Minkowski (p=4) and Hamming distances, and
// mentions Chebyshev and Canberra as also-rans. On 0/1 vectors every one
// of these is a function of the symmetric-difference count, which the
// sparse kernels exploit.
#ifndef LOGR_CLUSTER_DISTANCE_H_
#define LOGR_CLUSTER_DISTANCE_H_

#include <cstddef>
#include <string>

#include "linalg/matrix.h"
#include "util/thread_pool.h"
#include "workload/feature_vec.h"

namespace logr {

enum class Metric {
  kEuclidean,
  kManhattan,
  kMinkowski,  // l_p, parameterized by DistanceSpec::p
  kHamming,    // count(x != y) / n  (paper's normalized form)
  kChebyshev,
  kCanberra,
};

struct DistanceSpec {
  Metric metric = Metric::kEuclidean;
  double p = 4.0;  // Minkowski order (paper uses p = 4)

  std::string Name() const;
};

/// Number of coordinates on which `a` and `b` differ.
std::size_t SymmetricDifference(const FeatureVec& a, const FeatureVec& b);

/// Distance between two binary sparse vectors in an `n`-feature universe.
double Distance(const FeatureVec& a, const FeatureVec& b, std::size_t n,
                const DistanceSpec& spec);

/// Full pairwise distance matrix of `vecs`, computed across the shared
/// thread pool (LOGR_THREADS workers). Bit-identical to the serial path:
/// every (i, j) entry is an independent write.
Matrix DistanceMatrix(const std::vector<FeatureVec>& vecs, std::size_t n,
                      const DistanceSpec& spec);

/// As above but on an explicit pool; `pool == nullptr` runs serially.
Matrix DistanceMatrix(const std::vector<FeatureVec>& vecs, std::size_t n,
                      const DistanceSpec& spec, ThreadPool* pool);

}  // namespace logr

#endif  // LOGR_CLUSTER_DISTANCE_H_
