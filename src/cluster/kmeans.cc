#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/distance.h"
#include "util/check.h"
#include "util/prng.h"

namespace logr {

namespace {

std::vector<double> ResolveWeights(std::size_t count,
                                   const std::vector<double>& weights) {
  if (weights.empty()) return std::vector<double>(count, 1.0);
  LOGR_CHECK(weights.size() == count);
  return weights;
}

// Squared Euclidean distance from sparse binary x to dense centroid c,
// given ||c||^2: ||x - c||^2 = |x| - 2 * sum_{f in x} c_f + ||c||^2.
double SparseSqDist(const FeatureVec& x, const double* c, double c_norm_sq) {
  double dot = 0.0;
  for (FeatureId f : x.ids) dot += c[f];
  return static_cast<double>(x.size()) - 2.0 * dot + c_norm_sq;
}

double DenseSqDist(const Vector& x, const Vector& c) {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    double d = x[i] - c[i];
    acc += d * d;
  }
  return acc;
}

// k-means++ seeding over abstract points: `sq_dist_to(i, j)` returns the
// squared distance between input points i and j.
template <typename SqDistFn>
std::vector<std::size_t> PlusPlusSeed(std::size_t count, std::size_t k,
                                      const std::vector<double>& weights,
                                      Pcg32* rng, SqDistFn sq_dist_to) {
  std::vector<std::size_t> centers;
  centers.push_back(rng->NextDiscrete(weights));
  std::vector<double> best_d2(count, std::numeric_limits<double>::max());
  while (centers.size() < k) {
    std::size_t latest = centers.back();
    std::vector<double> probs(count);
    for (std::size_t i = 0; i < count; ++i) {
      best_d2[i] = std::min(best_d2[i], sq_dist_to(i, latest));
      probs[i] = weights[i] * best_d2[i];
    }
    centers.push_back(rng->NextDiscrete(probs));
  }
  return centers;
}

}  // namespace

ClusteringResult KMeansSparse(const std::vector<FeatureVec>& vecs,
                              const std::vector<double>& weights_in,
                              std::size_t n, const KMeansOptions& opts) {
  const std::size_t count = vecs.size();
  LOGR_CHECK(count > 0 && opts.k >= 1);
  const std::size_t k = std::min(opts.k, count);
  std::vector<double> weights = ResolveWeights(count, weights_in);
  Pcg32 rng(opts.seed);
  ThreadPool* pool = opts.pool ? opts.pool : ThreadPool::Shared();

  ClusteringResult best;
  best.inertia = std::numeric_limits<double>::max();
  std::vector<int> new_assign(count);
  std::vector<double> best_dist(count);

  // Every restart's ++ seeding reads squared point-to-point distances
  // (= exact symmetric-difference counts) from the XOR+popcount kernel.
  // A caller-shared pool (opts.packed) is used as-is; otherwise pack
  // once per call, skipping the transposed planes point pairs never
  // sweep. Oversized universes keep the merge kernel.
  const bool pack_local =
      opts.packed == nullptr && PackedPoolFits(count, n, /*with_columns=*/false);
  const PackedVecPool local_packed =
      pack_local ? PackedVecPool(vecs, n, /*build_columns=*/false)
                 : PackedVecPool();
  const PackedVecPool* packed =
      opts.packed ? opts.packed : (pack_local ? &local_packed : nullptr);
  auto seed_sq_dist = [&](std::size_t i, std::size_t j) {
    return static_cast<double>(packed
                                   ? packed->SymmetricDifference(i, j)
                                   : SymmetricDifference(vecs[i], vecs[j]));
  };

  for (int init = 0; init < std::max(1, opts.n_init); ++init) {
    // --- seed ---
    auto seed_centers = PlusPlusSeed(count, k, weights, &rng, seed_sq_dist);
    Matrix centroids(k, n);
    for (std::size_t c = 0; c < k; ++c) {
      for (FeatureId f : vecs[seed_centers[c]].ids) centroids(c, f) = 1.0;
    }

    std::vector<int> assignment(count, -1);
    double inertia = 0.0;
    int iter = 0;
    for (; iter < opts.max_iterations; ++iter) {
      // --- assign ---
      std::vector<double> norm_sq(k, 0.0);
      for (std::size_t c = 0; c < k; ++c) {
        const double* row = centroids.Row(c);
        double acc = 0.0;
        for (std::size_t f = 0; f < n; ++f) acc += row[f] * row[f];
        norm_sq[c] = acc;
      }
      // Parallel scan into per-point slots; the order-sensitive inertia
      // sum stays serial so every pool size gives identical results.
      ParallelFor(pool, 0, count, [&](std::size_t i) {
        int best_c = 0;
        double best_d = std::numeric_limits<double>::max();
        for (std::size_t c = 0; c < k; ++c) {
          double d = SparseSqDist(vecs[i], centroids.Row(c), norm_sq[c]);
          if (d < best_d) {
            best_d = d;
            best_c = static_cast<int>(c);
          }
        }
        new_assign[i] = best_c;
        best_dist[i] = best_d;
      });
      bool changed = false;
      inertia = 0.0;
      for (std::size_t i = 0; i < count; ++i) {
        if (assignment[i] != new_assign[i]) {
          assignment[i] = new_assign[i];
          changed = true;
        }
        inertia += weights[i] * std::max(0.0, best_dist[i]);
      }
      if (!changed) break;
      // --- update ---
      centroids = Matrix(k, n);
      std::vector<double> mass(k, 0.0);
      for (std::size_t i = 0; i < count; ++i) {
        int c = assignment[i];
        mass[c] += weights[i];
        double* row = centroids.Row(c);
        for (FeatureId f : vecs[i].ids) row[f] += weights[i];
      }
      for (std::size_t c = 0; c < k; ++c) {
        if (mass[c] <= 0.0) {
          // Empty cluster: reseed at the point with max distance mass.
          std::size_t far = rng.NextBounded(static_cast<std::uint32_t>(count));
          double* row = centroids.Row(c);
          std::fill(row, row + n, 0.0);
          for (FeatureId f : vecs[far].ids) row[f] = 1.0;
          continue;
        }
        double* row = centroids.Row(c);
        for (std::size_t f = 0; f < n; ++f) row[f] /= mass[c];
      }
    }
    if (inertia < best.inertia) {
      best.assignment = std::move(assignment);
      best.inertia = inertia;
      best.iterations = iter + 1;
    }
  }
  best.k = k;
  return best;
}

ClusteringResult KMeansDense(const std::vector<Vector>& points,
                             const std::vector<double>& weights_in,
                             const KMeansOptions& opts) {
  const std::size_t count = points.size();
  LOGR_CHECK(count > 0 && opts.k >= 1);
  const std::size_t dim = points[0].size();
  const std::size_t k = std::min(opts.k, count);
  std::vector<double> weights = ResolveWeights(count, weights_in);
  Pcg32 rng(opts.seed ^ 0x9e3779b97f4a7c15ULL);
  ThreadPool* pool = opts.pool ? opts.pool : ThreadPool::Shared();

  ClusteringResult best;
  best.inertia = std::numeric_limits<double>::max();
  std::vector<int> new_assign(count);
  std::vector<double> best_dist(count);

  for (int init = 0; init < std::max(1, opts.n_init); ++init) {
    auto seed_centers = PlusPlusSeed(
        count, k, weights, &rng, [&](std::size_t i, std::size_t j) {
          return DenseSqDist(points[i], points[j]);
        });
    std::vector<Vector> centroids;
    centroids.reserve(k);
    for (std::size_t c = 0; c < k; ++c) {
      centroids.push_back(points[seed_centers[c]]);
    }

    std::vector<int> assignment(count, -1);
    double inertia = 0.0;
    int iter = 0;
    for (; iter < opts.max_iterations; ++iter) {
      ParallelFor(pool, 0, count, [&](std::size_t i) {
        int best_c = 0;
        double best_d = std::numeric_limits<double>::max();
        for (std::size_t c = 0; c < k; ++c) {
          double d = DenseSqDist(points[i], centroids[c]);
          if (d < best_d) {
            best_d = d;
            best_c = static_cast<int>(c);
          }
        }
        new_assign[i] = best_c;
        best_dist[i] = best_d;
      });
      bool changed = false;
      inertia = 0.0;
      for (std::size_t i = 0; i < count; ++i) {
        if (assignment[i] != new_assign[i]) {
          assignment[i] = new_assign[i];
          changed = true;
        }
        inertia += weights[i] * best_dist[i];
      }
      if (!changed) break;
      for (auto& c : centroids) std::fill(c.begin(), c.end(), 0.0);
      std::vector<double> mass(k, 0.0);
      for (std::size_t i = 0; i < count; ++i) {
        int c = assignment[i];
        mass[c] += weights[i];
        for (std::size_t f = 0; f < dim; ++f) {
          centroids[c][f] += weights[i] * points[i][f];
        }
      }
      for (std::size_t c = 0; c < k; ++c) {
        if (mass[c] <= 0.0) {
          centroids[c] =
              points[rng.NextBounded(static_cast<std::uint32_t>(count))];
          continue;
        }
        for (double& v : centroids[c]) v /= mass[c];
      }
    }
    if (inertia < best.inertia) {
      best.assignment = std::move(assignment);
      best.inertia = inertia;
      best.iterations = iter + 1;
    }
  }
  best.k = k;
  return best;
}

}  // namespace logr
