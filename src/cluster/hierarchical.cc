#include "cluster/hierarchical.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "cluster/nn_chain.h"
#include "util/check.h"

namespace logr {

namespace {

/// Union-find over leaf ids.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(int a, int b) {
    int ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::vector<int> parent_;
};

/// Leaf masses for the weighted average linkage.
std::vector<double> ResolveMasses(std::size_t n,
                                  const std::vector<double>& weights) {
  std::vector<double> mass(n, 1.0);
  if (!weights.empty()) {
    LOGR_CHECK(weights.size() == n);
    for (std::size_t i = 0; i < n; ++i) {
      mass[i] = weights[i] > 0.0 ? weights[i] : 1e-12;
    }
  }
  return mass;
}

/// Chunk edge for the parallel nearest() scan. Each chunk reduces to a
/// local (dist, arg) minimum in ascending index order; the chunk minima
/// are then folded serially in chunk order, so the winner is the exact
/// smallest-index argmin a serial scan would pick, for any pool size.
constexpr std::size_t kScanChunk = 128;

/// Below this many iterations the scan / row-update loops run inline
/// (ParallelForInlinable): their bodies are a handful of ops, so the
/// dispatch round trip costs more than the loop until N is large.
/// Results are identical either way.
constexpr std::size_t kMinParallelIters = 4096;

}  // namespace

std::vector<int> Dendrogram::CutToK(std::size_t k) const {
  LOGR_CHECK(k >= 1);
  const std::size_t n = num_leaves;
  k = std::min(k, n);

  // Node -> representative leaf: a merge's subtree is represented by the
  // representative of its first argument, resolved transitively.
  std::vector<int> rep(n + merge_a.size());
  for (std::size_t i = 0; i < n; ++i) rep[i] = static_cast<int>(i);
  for (std::size_t i = 0; i < merge_a.size(); ++i) {
    rep[n + i] = rep[merge_a[i]];
  }

  // Apply merges in ascending height order until K components remain.
  std::vector<std::size_t> order(merge_a.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return height[a] < height[b];
  });
  DisjointSets sets(n);
  std::size_t components = n;
  for (std::size_t idx : order) {
    if (components <= k) break;
    if (sets.Union(rep[merge_a[idx]], rep[merge_b[idx]])) --components;
  }

  // Densify component labels.
  std::vector<int> label(n, -1);
  std::vector<int> assignment(n);
  int next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    int root = sets.Find(static_cast<int>(i));
    if (label[root] < 0) label[root] = next++;
    assignment[i] = label[root];
  }
  return assignment;
}

Dendrogram AgglomerativeAverageLinkage(const Matrix& distances,
                                       const std::vector<double>& weights,
                                       ThreadPool* pool) {
  const std::size_t n = distances.rows();
  LOGR_CHECK(distances.cols() == n && n >= 1);

  Dendrogram out;
  out.num_leaves = n;
  if (n == 1) return out;

  // Working distance matrix over active nodes; node ids grow as merges
  // happen, but we reuse the slot of the first merged node for the
  // result to keep the matrix n x n.
  Matrix d = distances;
  std::vector<double> mass = ResolveMasses(n, weights);
  // slot -> current dendrogram node id occupying it
  std::vector<int> node_of_slot(n);
  std::iota(node_of_slot.begin(), node_of_slot.end(), 0);

  // Chain walk, active-slot list, and deterministic chunked argmin come
  // from cluster/nn_chain.h (shared with the mixture reconcile).
  NNChainScan scan(n, kScanChunk, kMinParallelIters / kScanChunk, pool);

  // Cached nearest neighbor per slot. A valid entry equals exactly what
  // a full serial scan would return — value and smallest-index tie-break
  // — so the merge sequence matches the reference bit for bit. Entries
  // go stale only when their cached neighbor itself merges (lazy
  // invalidation, rescanned on next use); the Lance-Williams pass keeps
  // all other entries exact in place (see the update rule below).
  constexpr std::size_t kNone = NNChainScan::kNone;
  std::vector<std::size_t> cached_arg(n, kNone);
  std::vector<double> cached_dist(n, 0.0);

  auto nearest = [&](std::size_t a) {
    if (cached_arg[a] != kNone) {
      return std::make_pair(cached_arg[a], cached_dist[a]);
    }
    const double* row = d.Row(a);
    const std::pair<std::size_t, double> found =
        scan.Argmin(a, [row](std::size_t j) { return row[j]; });
    cached_arg[a] = found.first;
    cached_dist[a] = found.second;
    return found;
  };

  // Reciprocal pair (a, b) found: record the merge, then the
  // Lance-Williams weighted average-linkage update into slot a, fused
  // with the exact cache maintenance. Each iteration writes only its
  // own j-indexed slots, so the schedule never changes a bit. Cache
  // rule: entries pointing at a or b go stale (their distance changed /
  // their node vanished); any other valid entry stays the true minimum
  // because the updated d(j, a) is a weighted average of two old
  // distances, both >= the cached minimum — only an exact tie with a
  // smaller index (a < cached_arg[j]) can re-point it.
  auto merge = [&](std::size_t a, std::size_t b, double dist_ab) {
    out.merge_a.push_back(node_of_slot[a]);
    out.merge_b.push_back(node_of_slot[b]);
    out.height.push_back(dist_ab);
    const double ma = mass[a], mb = mass[b];
    const std::vector<std::uint32_t>& slots = scan.slots();
    const std::uint32_t* list = slots.data();
    ParallelForInlinable(pool, 0, slots.size(), kMinParallelIters,
                         [&](std::size_t p) {
      const std::size_t j2 = list[p];
      if (!scan.IsActive(j2) || j2 == a) return;
      double nd = (ma * d(a, j2) + mb * d(b, j2)) / (ma + mb);
      d(a, j2) = nd;
      d(j2, a) = nd;
      if (cached_arg[j2] == kNone) return;
      if (cached_arg[j2] == a || cached_arg[j2] == b) {
        cached_arg[j2] = kNone;
      } else if (nd < cached_dist[j2] ||
                 (nd == cached_dist[j2] && a < cached_arg[j2])) {
        cached_arg[j2] = a;
        cached_dist[j2] = nd;
      }
    });
    mass[a] = ma + mb;
    cached_arg[a] = kNone;
    node_of_slot[a] = static_cast<int>(n + out.merge_a.size() - 1);
  };

  // Average linkage is reducible, so the chain survives merges.
  NNChainAgglomerate(scan, 1, /*reducible=*/true, nearest, merge);
  return out;
}

Dendrogram AgglomerativeAverageLinkageReference(
    const Matrix& distances, const std::vector<double>& weights) {
  const std::size_t n = distances.rows();
  LOGR_CHECK(distances.cols() == n && n >= 1);

  Dendrogram out;
  out.num_leaves = n;
  if (n == 1) return out;

  Matrix d = distances;
  std::vector<double> mass = ResolveMasses(n, weights);
  std::vector<bool> active(n, true);
  std::vector<int> node_of_slot(n);
  std::iota(node_of_slot.begin(), node_of_slot.end(), 0);

  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::size_t remaining = n;

  auto nearest = [&](std::size_t a) {
    double best = std::numeric_limits<double>::max();
    std::size_t arg = a;
    for (std::size_t j = 0; j < n; ++j) {
      if (!active[j] || j == a) continue;
      // Deterministic tie-break on index.
      if (d(a, j) < best || (d(a, j) == best && j < arg)) {
        best = d(a, j);
        arg = j;
      }
    }
    return std::make_pair(arg, best);
  };

  while (remaining > 1) {
    if (chain.empty()) {
      for (std::size_t i = 0; i < n; ++i) {
        if (active[i]) {
          chain.push_back(i);
          break;
        }
      }
    }
    for (;;) {
      std::size_t a = chain.back();
      auto [b, dist_ab] = nearest(a);
      if (chain.size() >= 2 && b == chain[chain.size() - 2]) {
        chain.pop_back();
        chain.pop_back();
        int node_a = node_of_slot[a];
        int node_b = node_of_slot[b];
        out.merge_a.push_back(node_a);
        out.merge_b.push_back(node_b);
        out.height.push_back(dist_ab);
        // Lance-Williams weighted average-linkage update into slot a.
        double ma = mass[a], mb = mass[b];
        for (std::size_t j2 = 0; j2 < n; ++j2) {
          if (!active[j2] || j2 == a || j2 == b) continue;
          double nd = (ma * d(a, j2) + mb * d(b, j2)) / (ma + mb);
          d(a, j2) = nd;
          d(j2, a) = nd;
        }
        mass[a] = ma + mb;
        active[b] = false;
        node_of_slot[a] =
            static_cast<int>(n + out.merge_a.size() - 1);
        --remaining;
        break;
      }
      chain.push_back(b);
    }
  }
  return out;
}

}  // namespace logr
