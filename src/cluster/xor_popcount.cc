#include "cluster/xor_popcount.h"

#include "util/cpu_features.h"

namespace logr {

void XorPopcountAccumScalar(const std::uint64_t* row,
                            const std::uint32_t* nzw, std::size_t n_nzw,
                            const std::uint64_t* cols,
                            const std::uint8_t* pcc, std::size_t stride,
                            std::int32_t* acc, std::size_t len) {
  for (std::size_t t = 0; t < n_nzw; ++t) {
    const std::size_t off = static_cast<std::size_t>(nzw[t]) * stride;
    const std::uint64_t riw = row[nzw[t]];
    const std::uint64_t* col = cols + off;
    const std::uint8_t* pc = pcc + off;
    for (std::size_t j = 0; j < len; ++j) {
      acc[j] += __builtin_popcountll(riw ^ col[j]) -
                static_cast<std::int32_t>(pc[j]);
    }
  }
}

PopcountKernel SelectedPopcountKernel() {
  static const PopcountKernel kernel = [] {
    if (ForceScalarEnv()) return PopcountKernel::kScalar;
    const CpuFeatures& cpu = DetectCpuFeatures();
    if (XorPopcountAvx512Compiled() && cpu.avx512_vpopcntdq) {
      return PopcountKernel::kAvx512;
    }
    if (XorPopcountAvx2Compiled() && cpu.avx2) return PopcountKernel::kAvx2;
    return PopcountKernel::kScalar;
  }();
  return kernel;
}

const char* PopcountKernelName(PopcountKernel k) {
  switch (k) {
    case PopcountKernel::kAvx512:
      return "avx512";
    case PopcountKernel::kAvx2:
      return "avx2";
    case PopcountKernel::kScalar:
      break;
  }
  return "scalar";
}

XorPopcountAccumFn SelectedXorPopcountAccum() {
  switch (SelectedPopcountKernel()) {
    case PopcountKernel::kAvx512:
      return &XorPopcountAccumAvx512;
    case PopcountKernel::kAvx2:
      return &XorPopcountAccumAvx2;
    case PopcountKernel::kScalar:
      break;
  }
  return &XorPopcountAccumScalar;
}

}  // namespace logr
