// AVX-512 VPOPCNTDQ xor+popcount accumulation kernel. This TU is
// compiled with -mavx512f -mavx512vpopcntdq (see CMakeLists); without
// those flags the guard swaps in the scalar body and Compiled()
// reports false so dispatch never picks it.
#include "cluster/xor_popcount.h"

#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)
#include <immintrin.h>
#endif

namespace logr {

#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)

bool XorPopcountAvx512Compiled() { return true; }

void XorPopcountAccumAvx512(const std::uint64_t* row,
                            const std::uint32_t* nzw, std::size_t n_nzw,
                            const std::uint64_t* cols,
                            const std::uint8_t* pcc, std::size_t stride,
                            std::int32_t* acc, std::size_t len) {
  std::size_t j = 0;
  // 16 accumulator lanes per step; the zmm accumulator stays in a
  // register across the entire nonzero-word loop, so per word the only
  // memory traffic is the two column loads and the popcount bytes.
  for (; j + 16 <= len; j += 16) {
    __m512i a = _mm512_loadu_si512(acc + j);
    for (std::size_t t = 0; t < n_nzw; ++t) {
      const std::size_t off = static_cast<std::size_t>(nzw[t]) * stride + j;
      const __m512i r =
          _mm512_set1_epi64(static_cast<long long>(row[nzw[t]]));
      const __m512i x0 = _mm512_xor_si512(_mm512_loadu_si512(cols + off), r);
      const __m512i x1 =
          _mm512_xor_si512(_mm512_loadu_si512(cols + off + 8), r);
      // 16 x u64 popcounts, each <= 64 so the narrowing casts are exact.
      const __m256i c0 = _mm512_cvtepi64_epi32(_mm512_popcnt_epi64(x0));
      const __m256i c1 = _mm512_cvtepi64_epi32(_mm512_popcnt_epi64(x1));
      const __m512i cnt =
          _mm512_inserti64x4(_mm512_castsi256_si512(c0), c1, 1);
      const __m512i pc = _mm512_cvtepu8_epi32(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(pcc + off)));
      a = _mm512_add_epi32(a, _mm512_sub_epi32(cnt, pc));
    }
    _mm512_storeu_si512(acc + j, a);
  }
  for (; j + 8 <= len; j += 8) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j));
    for (std::size_t t = 0; t < n_nzw; ++t) {
      const std::size_t off = static_cast<std::size_t>(nzw[t]) * stride + j;
      const __m512i r =
          _mm512_set1_epi64(static_cast<long long>(row[nzw[t]]));
      const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(cols + off), r);
      const __m256i cnt = _mm512_cvtepi64_epi32(_mm512_popcnt_epi64(x));
      const __m256i pc = _mm256_cvtepu8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(pcc + off)));
      a = _mm256_add_epi32(a, _mm256_sub_epi32(cnt, pc));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + j), a);
  }
  for (; j < len; ++j) {
    std::int32_t a = acc[j];
    for (std::size_t t = 0; t < n_nzw; ++t) {
      const std::size_t off = static_cast<std::size_t>(nzw[t]) * stride + j;
      a += __builtin_popcountll(row[nzw[t]] ^ cols[off]) -
           static_cast<std::int32_t>(pcc[off]);
    }
    acc[j] = a;
  }
}

#else

bool XorPopcountAvx512Compiled() { return false; }

void XorPopcountAccumAvx512(const std::uint64_t* row,
                            const std::uint32_t* nzw, std::size_t n_nzw,
                            const std::uint64_t* cols,
                            const std::uint8_t* pcc, std::size_t stride,
                            std::int32_t* acc, std::size_t len) {
  XorPopcountAccumScalar(row, nzw, n_nzw, cols, pcc, stride, acc, len);
}

#endif  // __AVX512F__ && __AVX512VPOPCNTDQ__

}  // namespace logr
