// Shared scaffolding for nearest-neighbor-chain agglomeration.
//
// Two agglomerations in the codebase walk the same reciprocal-NN chain:
// the hierarchical average-linkage fit (cluster/hierarchical.cc, dense
// Lance-Williams distances) and the sharded-mixture reconcile
// (core/mixture.cc, fused-error linkage between component groups). The
// chain walk, the active-slot bookkeeping, and the deterministic
// chunked argmin scan are identical in both; only the linkage, the
// nearest-neighbor caching, and the merge bookkeeping differ. This
// header holds the common machinery, parameterized on those three.
//
// Determinism contract (both call sites depend on it): the argmin scan
// returns the exact smallest-index minimizer a serial ascending scan
// would pick, for any thread-pool size. Chunks reduce to local minima
// in ascending index order (strict <, so the first minimum wins), and
// the chunk minima fold serially in chunk order (strict <, so ties
// resolve to the earlier chunk, i.e. the smaller index).
#ifndef LOGR_CLUSTER_NN_CHAIN_H_
#define LOGR_CLUSTER_NN_CHAIN_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace logr {

/// Active-slot set for an agglomeration: `count` slots, all initially
/// active, merged slots deactivated one per merge. Maintains a compact
/// ascending slot list so scans track the shrinking active set (dead
/// entries are swept once they reach half the list — deterministic, and
/// iteration order stays ascending, so results never depend on when the
/// sweep runs), plus reusable state for the chunked argmin scan.
class NNChainScan {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// `scan_chunk` is the per-chunk edge of the parallel argmin;
  /// `scan_grain` the minimum chunks-per-dispatch before the scan goes
  /// parallel (below it the loop runs inline; results are identical
  /// either way).
  NNChainScan(std::size_t count, std::size_t scan_chunk,
              std::size_t scan_grain, ThreadPool* pool)
      : pool_(pool),
        scan_chunk_(scan_chunk),
        scan_grain_(scan_grain),
        active_(count, 1),
        slot_list_(count),
        chunk_best_((count + scan_chunk - 1) / scan_chunk),
        chunk_arg_(chunk_best_.size()) {
    std::iota(slot_list_.begin(), slot_list_.end(), 0);
  }

  std::size_t size() const { return active_.size(); }
  bool IsActive(std::size_t s) const { return active_[s] != 0; }

  /// The (mostly) active ascending slot list; entries must be re-checked
  /// with IsActive. Valid until the next MaybeCompact().
  const std::vector<std::uint32_t>& slots() const { return slot_list_; }

  void Deactivate(std::size_t s) {
    active_[s] = 0;
    ++dead_;
  }

  void MaybeCompact() {
    if (dead_ * 2 <= slot_list_.size()) return;
    slot_list_.erase(
        std::remove_if(slot_list_.begin(), slot_list_.end(),
                       [&](std::uint32_t s) { return !active_[s]; }),
        slot_list_.end());
    dead_ = 0;
  }

  /// Deterministic chunked argmin of `linkage(j)` over active slots
  /// j != a (see the header comment for the tie-break contract).
  /// Returns {arg, best}; arg == a when no other slot is active.
  template <typename LinkageFn>
  std::pair<std::size_t, double> Argmin(std::size_t a,
                                        const LinkageFn& linkage) {
    const std::size_t list_len = slot_list_.size();
    const std::size_t num_chunks =
        (list_len + scan_chunk_ - 1) / scan_chunk_;
    const std::uint32_t* list = slot_list_.data();
    ParallelForInlinable(pool_, 0, num_chunks, scan_grain_,
                         [&](std::size_t c) {
      const std::size_t lo = c * scan_chunk_;
      const std::size_t hi = std::min(list_len, lo + scan_chunk_);
      double best = std::numeric_limits<double>::max();
      std::size_t arg = kNone;
      for (std::size_t p = lo; p < hi; ++p) {
        const std::size_t j = list[p];
        if (!active_[j] || j == a) continue;
        const double d = linkage(j);
        // Ascending j keeps the first (smallest-index) minimum.
        if (d < best) {
          best = d;
          arg = j;
        }
      }
      chunk_best_[c] = best;
      chunk_arg_[c] = arg;
    });
    double best = std::numeric_limits<double>::max();
    std::size_t arg = a;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      // Strict <: ties resolve to the earlier chunk, i.e. the smaller
      // index, matching the serial scan.
      if (chunk_arg_[c] != kNone && chunk_best_[c] < best) {
        best = chunk_best_[c];
        arg = chunk_arg_[c];
      }
    }
    return std::make_pair(arg, best);
  }

 private:
  ThreadPool* pool_;
  std::size_t scan_chunk_;
  std::size_t scan_grain_;
  std::vector<std::uint8_t> active_;
  std::vector<std::uint32_t> slot_list_;
  std::size_t dead_ = 0;
  // Chunked scan state, reused across Argmin calls.
  std::vector<double> chunk_best_;
  std::vector<std::size_t> chunk_arg_;
};

/// Reciprocal-nearest-neighbor chain walk: grows a chain of successive
/// nearest neighbors until the last two links point at each other, fuses
/// that pair, and repeats until `target` groups remain.
///
/// `nearest(a)` must return the exact {arg, linkage} an ascending serial
/// scan over active slots would (NNChainScan::Argmin qualifies; callers
/// typically wrap it in their own caching). `merge(a, b, linkage)` fuses
/// slot b into slot a; b is already deactivated when it runs, and the
/// driver compacts the slot list afterwards.
///
/// `reducible` declares the Lance-Williams reducibility property: a
/// merge never moves the fused group closer to any third group than the
/// two parents were. Under it the chain prefix stays valid across
/// merges and is kept (hierarchical average linkage). A non-reducible
/// linkage (the reconcile's fused-error delta) may invalidate the
/// prefix, so the chain restarts after every merge — the caches carried
/// by `nearest` keep the rebuild cheap, and the restart point (the
/// smallest active slot) is deterministic.
template <typename NearestFn, typename MergeFn>
void NNChainAgglomerate(NNChainScan& scan, std::size_t target,
                        bool reducible, const NearestFn& nearest,
                        const MergeFn& merge) {
  const std::size_t count = scan.size();
  std::vector<std::size_t> chain;
  chain.reserve(count);
  std::size_t remaining = count;
  while (remaining > target) {
    if (chain.empty()) {
      for (std::size_t i = 0; i < count; ++i) {
        if (scan.IsActive(i)) {
          chain.push_back(i);
          break;
        }
      }
    }
    for (;;) {
      const std::size_t a = chain.back();
      const std::pair<std::size_t, double> nb = nearest(a);
      const std::size_t b = nb.first;
      if (chain.size() >= 2 && b == chain[chain.size() - 2]) {
        chain.pop_back();
        chain.pop_back();
        scan.Deactivate(b);
        merge(a, b, nb.second);
        scan.MaybeCompact();
        --remaining;
        if (!reducible) chain.clear();
        break;
      }
      chain.push_back(b);
    }
  }
}

}  // namespace logr

#endif  // LOGR_CLUSTER_NN_CHAIN_H_
