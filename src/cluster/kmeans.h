// Weighted k-means with k-means++ initialization (paper Sec. 6.1 uses
// sklearn KMeans with Euclidean distance; we cluster the distinct query
// vectors weighted by multiplicity, which is equivalent to clustering the
// raw log).
//
// Two input forms are supported: sparse binary vectors (query logs) and
// dense points (spectral embeddings).
#ifndef LOGR_CLUSTER_KMEANS_H_
#define LOGR_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/thread_pool.h"
#include "workload/feature_vec.h"

namespace logr {

struct KMeansOptions {
  std::size_t k = 1;
  int max_iterations = 100;
  /// Number of random restarts; the run with lowest inertia wins
  /// (sklearn's n_init).
  int n_init = 4;
  std::uint64_t seed = 17;
  /// Pool for the assignment step; nullptr selects ThreadPool::Shared().
  /// Results are bit-identical for every pool size (the per-point scan is
  /// parallel, the inertia reduction is serial and in index order).
  ThreadPool* pool = nullptr;
  /// Optional shared packed pool over exactly the input vectors (row i
  /// == vecs[i]); ++-seeding reads its symmetric differences instead of
  /// packing a private pool. Distances are the same exact integers
  /// either way.
  const PackedVecPool* packed = nullptr;
};

struct ClusteringResult {
  std::vector<int> assignment;  // cluster id per input index
  std::size_t k = 0;            // number of clusters requested
  double inertia = 0.0;         // weighted sum of squared distances
  int iterations = 0;           // Lloyd iterations of the winning run
};

/// K-means on sparse binary vectors in an `n`-feature universe. `weights`
/// may be empty (all ones) or give one non-negative weight per vector.
ClusteringResult KMeansSparse(const std::vector<FeatureVec>& vecs,
                              const std::vector<double>& weights,
                              std::size_t n, const KMeansOptions& opts);

/// K-means on dense points (rows of equal length).
ClusteringResult KMeansDense(const std::vector<Vector>& points,
                             const std::vector<double>& weights,
                             const KMeansOptions& opts);

}  // namespace logr

#endif  // LOGR_CLUSTER_KMEANS_H_
