// Generalizations of Laserlight / MTV to partitioned data
// (paper Section 8.1.3 and Appendix D.3).
//
// Two variants:
//  * Mixture Scaled — each cluster mines as many patterns as the naive
//    encoding's verbosity for that cluster (comparable to naive mixture);
//    MTV stays capped at its 15-pattern ceiling, which the paper notes
//    makes that comparison "not strictly on equal footing".
//  * Mixture Fixed — a fixed total budget (the paper uses 100) is
//    distributed across clusters with weights w_i ∝ (m_i / n_i) · e(E_i)
//    (App. D.3: m = distinct rows, n = live features, e = naive
//    Reproduction Error of the cluster).
//
// Errors are extensive (sums over tuples), so partition errors add.
#ifndef LOGR_SUMMARIZE_MIXTURE_BASELINES_H_
#define LOGR_SUMMARIZE_MIXTURE_BASELINES_H_

#include <vector>

#include "summarize/laserlight.h"
#include "summarize/mtv.h"

namespace logr {

/// A clustered binary dataset with a binary outcome column (Laserlight's
/// input shape). For MTV the labels are ignored.
struct PartitionedData {
  std::vector<FeatureVec> rows;
  std::vector<double> labels;   // v(t) in [0,1]
  std::vector<double> weights;  // empty = uniform
  std::size_t n_features = 0;
  std::vector<int> assignment;  // cluster id per row
  std::size_t num_clusters = 1;
};

struct MixtureRunResult {
  double total_error = 0.0;              // summed across clusters
  std::vector<double> cluster_errors;
  std::vector<std::size_t> cluster_patterns;  // patterns mined per cluster
};

/// Laserlight on each cluster with per-cluster pattern budgets.
MixtureRunResult LaserlightMixture(const PartitionedData& data,
                                   const std::vector<std::size_t>& budgets,
                                   const LaserlightOptions& opts);

/// MTV on each cluster with per-cluster budgets (each clamped to the MTV
/// ceiling). Errors are MTV errors (|D_i| H_i + penalty).
MixtureRunResult MtvMixture(const PartitionedData& data,
                            const std::vector<std::size_t>& budgets,
                            const MtvOptions& opts);

/// Per-cluster naive verbosity (for Mixture Scaled budgets).
std::vector<std::size_t> NaiveVerbosityBudgets(const PartitionedData& data);

/// Appendix D.3 budget split: total_patterns distributed with
/// w_i ∝ (m_i / n_i) · e(E_i); every non-empty cluster gets >= 1 when
/// the budget allows.
std::vector<std::size_t> FixedBudgets(const PartitionedData& data,
                                      std::size_t total_patterns);

/// Naive-encoding reference errors per cluster, summed: the comparison
/// lines of Figures 6a and 9.
double NaiveLaserlightError(const PartitionedData& data);
double NaiveMtvError(const PartitionedData& data);

}  // namespace logr

#endif  // LOGR_SUMMARIZE_MIXTURE_BASELINES_H_
