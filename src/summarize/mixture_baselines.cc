#include "summarize/mixture_baselines.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/naive_encoding.h"
#include "summarize/errors.h"
#include "util/check.h"

namespace logr {

namespace {

struct ClusterView {
  std::vector<FeatureVec> rows;
  std::vector<double> labels;
  std::vector<double> weights;
  double total_weight = 0.0;
  double positive_rate = 0.0;
};

std::vector<ClusterView> SplitClusters(const PartitionedData& data) {
  LOGR_CHECK(data.assignment.size() == data.rows.size());
  std::vector<ClusterView> views(data.num_clusters);
  for (std::size_t r = 0; r < data.rows.size(); ++r) {
    int c = data.assignment[r];
    LOGR_CHECK(c >= 0 &&
               static_cast<std::size_t>(c) < data.num_clusters);
    ClusterView& v = views[c];
    double w = data.weights.empty() ? 1.0 : data.weights[r];
    v.rows.push_back(data.rows[r]);
    v.labels.push_back(data.labels.empty() ? 0.0 : data.labels[r]);
    v.weights.push_back(w);
    v.total_weight += w;
    v.positive_rate += w * (data.labels.empty() ? 0.0 : data.labels[r]);
  }
  for (ClusterView& v : views) {
    if (v.total_weight > 0.0) v.positive_rate /= v.total_weight;
  }
  return views;
}

NaiveEncoding ClusterNaive(const ClusterView& v, std::size_t n_features) {
  std::uint64_t count = static_cast<std::uint64_t>(
      std::llround(std::max(1.0, v.total_weight)));
  return NaiveEncoding::FromWeighted(v.rows, v.weights, n_features, count);
}

}  // namespace

MixtureRunResult LaserlightMixture(const PartitionedData& data,
                                   const std::vector<std::size_t>& budgets,
                                   const LaserlightOptions& opts) {
  std::vector<ClusterView> views = SplitClusters(data);
  LOGR_CHECK(budgets.size() == views.size());
  MixtureRunResult out;
  for (std::size_t c = 0; c < views.size(); ++c) {
    const ClusterView& v = views[c];
    if (v.rows.empty()) {
      out.cluster_errors.push_back(0.0);
      out.cluster_patterns.push_back(0);
      continue;
    }
    LaserlightOptions local = opts;
    local.max_patterns = budgets[c];
    local.seed = opts.seed + 101 * c;
    LaserlightSummary s = RunLaserlight(v.rows, v.labels, v.weights, local);
    out.cluster_errors.push_back(s.error);
    out.cluster_patterns.push_back(s.patterns.size());
    out.total_error += s.error;
  }
  return out;
}

MixtureRunResult MtvMixture(const PartitionedData& data,
                            const std::vector<std::size_t>& budgets,
                            const MtvOptions& opts) {
  std::vector<ClusterView> views = SplitClusters(data);
  LOGR_CHECK(budgets.size() == views.size());
  MixtureRunResult out;
  for (std::size_t c = 0; c < views.size(); ++c) {
    const ClusterView& v = views[c];
    if (v.rows.empty()) {
      out.cluster_errors.push_back(0.0);
      out.cluster_patterns.push_back(0);
      continue;
    }
    std::size_t budget = std::min(budgets[c], opts.max_patterns);
    MtvSummary s = RunMtv(v.rows, v.weights, data.n_features, budget, opts);
    LOGR_CHECK(s.error_message.empty());
    out.cluster_errors.push_back(s.bic);
    out.cluster_patterns.push_back(s.itemsets.size());
    out.total_error += s.bic;
  }
  return out;
}

std::vector<std::size_t> NaiveVerbosityBudgets(const PartitionedData& data) {
  std::vector<ClusterView> views = SplitClusters(data);
  std::vector<std::size_t> budgets;
  budgets.reserve(views.size());
  for (const ClusterView& v : views) {
    if (v.rows.empty()) {
      budgets.push_back(0);
      continue;
    }
    budgets.push_back(ClusterNaive(v, data.n_features).Verbosity());
  }
  return budgets;
}

std::vector<std::size_t> FixedBudgets(const PartitionedData& data,
                                      std::size_t total_patterns) {
  std::vector<ClusterView> views = SplitClusters(data);
  std::vector<double> score(views.size(), 0.0);
  double total_score = 0.0;
  for (std::size_t c = 0; c < views.size(); ++c) {
    const ClusterView& v = views[c];
    if (v.rows.empty()) continue;
    NaiveEncoding enc = ClusterNaive(v, data.n_features);
    double m = static_cast<double>(v.rows.size());          // distinct rows
    double n = std::max<double>(1.0, enc.Verbosity());       // live features
    double e = std::max(0.0, enc.ReproductionError());
    score[c] = m / n * e;
    total_score += score[c];
  }
  std::vector<std::size_t> budgets(views.size(), 0);
  if (total_score <= 0.0) {
    // Degenerate: all clusters already at zero error; spread evenly.
    std::size_t nonempty = 0;
    for (const ClusterView& v : views) {
      if (!v.rows.empty()) ++nonempty;
    }
    if (nonempty == 0) return budgets;
    for (std::size_t c = 0; c < views.size(); ++c) {
      if (!views[c].rows.empty()) budgets[c] = total_patterns / nonempty;
    }
    return budgets;
  }
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < views.size(); ++c) {
    budgets[c] = static_cast<std::size_t>(
        std::floor(score[c] / total_score * total_patterns));
    assigned += budgets[c];
  }
  // Distribute the rounding remainder to the highest-score clusters.
  std::vector<std::size_t> order(views.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return score[a] > score[b];
  });
  for (std::size_t i = 0; assigned < total_patterns && i < order.size();
       ++i) {
    if (views[order[i]].rows.empty()) continue;
    ++budgets[order[i]];
    ++assigned;
  }
  return budgets;
}

double NaiveLaserlightError(const PartitionedData& data) {
  std::vector<ClusterView> views = SplitClusters(data);
  double acc = 0.0;
  for (const ClusterView& v : views) {
    if (v.rows.empty()) continue;
    acc += LaserlightErrorOfNaive(v.total_weight, v.positive_rate);
  }
  return acc;
}

double NaiveMtvError(const PartitionedData& data) {
  std::vector<ClusterView> views = SplitClusters(data);
  double acc = 0.0;
  for (const ClusterView& v : views) {
    if (v.rows.empty()) continue;
    NaiveEncoding enc = ClusterNaive(v, data.n_features);
    acc += MtvErrorOfNaive(v.total_weight, enc.marginals());
  }
  return acc;
}

}  // namespace logr
