// MTV: summarizing data with the most informative itemsets
// (Mampaey, Vreeken, Tatti, TKDD 6(4), 2012 — the paper's baseline [40]).
//
// The summary is a set of itemsets; its model is the maximum-entropy
// distribution over {0,1}^n matching the itemsets' empirical supports on
// top of the per-item column margins (MTV's background knowledge),
// fitted as a factored model over pattern-connected components
// (maxent/factored_model.h). Mining is greedy: frequent itemsets
// (min-support 0.05, App. D.2) are scored by the divergence between
// empirical and model-estimated support, the best is added, the model
// refitted, and BIC decides termination. The paper consistently hit a
// practical ceiling of 15 patterns ("MTV quits with error message over
// 15 patterns"); the same hard cap is enforced here.
#ifndef LOGR_SUMMARIZE_MTV_H_
#define LOGR_SUMMARIZE_MTV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/itemsets.h"
#include "maxent/scaling.h"
#include "workload/feature_vec.h"

namespace logr {

struct MtvOptions {
  std::size_t max_patterns = 15;  // hard ceiling; >15 is rejected
  double min_support = 0.05;
  std::size_t max_itemset_size = 4;
  std::size_t max_candidates = 400;  // highest-support candidates kept
  ScalingOptions scaling;
  /// Stop early when adding the best candidate worsens BIC.
  bool bic_early_stop = false;
};

struct MtvSummary {
  std::vector<FeatureVec> itemsets;
  std::vector<double> supports;        // empirical support per itemset
  double model_entropy = 0.0;          // H(ρ̂) in nats
  double bic = 0.0;                    // |D| H + ½ |E| ln |D|
  std::vector<double> bic_trajectory;  // after 0,1,...,k itemsets
  std::string error_message;           // non-empty if the request was
                                       // rejected (e.g. > 15 patterns)
};

/// Runs MTV over weighted binary rows in an `n_features` universe.
MtvSummary RunMtv(const std::vector<FeatureVec>& rows,
                  const std::vector<double>& weights, std::size_t n_features,
                  std::size_t num_patterns, const MtvOptions& opts);

}  // namespace logr

#endif  // LOGR_SUMMARIZE_MTV_H_
