// Error measures of the baseline summarizers, including the closed forms
// for naive encodings derived in paper Section 8.1.1.
//
// All values are in nats. Both measures are *extensive*: they scale with
// the (weighted) number of data tuples |D|, so errors over disjoint
// partitions add.
#ifndef LOGR_SUMMARIZE_ERRORS_H_
#define LOGR_SUMMARIZE_ERRORS_H_

#include <cstddef>
#include <vector>

namespace logr {

/// Laserlight error of a prediction model:
/// Σ_t w_t [ v(t) ln(v(t)/u(t)) + (1-v(t)) ln((1-v(t))/(1-u(t))) ].
/// `labels` are the true v(t) in [0,1], `predictions` the model u(t).
double LaserlightError(const std::vector<double>& labels,
                       const std::vector<double>& predictions,
                       const std::vector<double>& weights);

/// Closed form for the naive encoding (Sec. 8.1.1): the naive model
/// predicts the global positive rate u for every tuple, giving
/// -|D| (u ln u + (1-u) ln(1-u)).
double LaserlightErrorOfNaive(double total_weight, double positive_rate);

/// MTV error (Sec. 8.1.1): |D| H(ρ̂) + ½ |E| ln |D|, where ρ̂ is the
/// summary's max-ent distribution. (The paper prints a minus sign on the
/// first term; with -log-likelihood = |D| H(ρ̂) for a fitted max-ent
/// model, the positive sign is the one under which "lower is better",
/// matching the paper's Figure 6b trend. EXPERIMENTS.md discusses this.)
double MtvError(double total_weight, double model_entropy,
                std::size_t verbosity);

/// Closed form for the naive encoding: H(ρ̂) = Σ_f h(p_f).
double MtvErrorOfNaive(double total_weight,
                       const std::vector<double>& feature_marginals);

}  // namespace logr

#endif  // LOGR_SUMMARIZE_ERRORS_H_
