#include "summarize/laserlight.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "maxent/entropy.h"
#include "summarize/errors.h"
#include "util/check.h"
#include "util/prng.h"

namespace logr {

namespace {

/// Max-ent Bernoulli model over pattern-containment classes of the
/// observed rows, fitted by cyclic iterative scaling. The implicit root
/// pattern (contained in every row) is always constraint 0.
class ExplanationModel {
 public:
  ExplanationModel(const std::vector<FeatureVec>* rows,
                   const std::vector<double>* labels,
                   const std::vector<double>* weights,
                   const LaserlightOptions* opts)
      : rows_(rows), labels_(labels), weights_(weights), opts_(opts) {}

  /// Refits the model for the given pattern list.
  void Fit(const std::vector<FeatureVec>& patterns) {
    const std::size_t m = patterns.size() + 1;  // + root
    // Group rows by pattern-containment signature.
    class_of_row_.assign(rows_->size(), 0);
    class_members_.clear();
    class_weight_.clear();
    class_target_.clear();
    class_odds_.clear();
    std::unordered_map<std::string, std::size_t> index;
    std::vector<std::vector<std::size_t>> class_constraints;
    row_signature_.assign(rows_->size(), {});
    for (std::size_t r = 0; r < rows_->size(); ++r) {
      std::vector<std::size_t> sig;
      sig.push_back(0);  // root
      for (std::size_t j = 0; j < patterns.size(); ++j) {
        if ((*rows_)[r].ContainsAll(patterns[j])) sig.push_back(j + 1);
      }
      std::string key(reinterpret_cast<const char*>(sig.data()),
                      sig.size() * sizeof(std::size_t));
      auto it = index.find(key);
      std::size_t cls;
      if (it == index.end()) {
        cls = class_weight_.size();
        index.emplace(std::move(key), cls);
        class_weight_.push_back(0.0);
        class_target_.push_back(0.0);
        class_odds_.push_back(1.0);
        class_members_.emplace_back();
        class_constraints.push_back(sig);
      } else {
        cls = it->second;
      }
      double w = weights_->empty() ? 1.0 : (*weights_)[r];
      class_weight_[cls] += w;
      class_target_[cls] += w * (*labels_)[r];
      class_members_[cls].push_back(r);
      class_of_row_[r] = cls;
      row_signature_[r] = std::move(sig);
    }

    // Constraint -> classes containing it, and target positive mass.
    constraint_classes_.assign(m, {});
    constraint_target_.assign(m, 0.0);
    for (std::size_t cls = 0; cls < class_weight_.size(); ++cls) {
      for (std::size_t j : class_constraints[cls]) {
        constraint_classes_[j].push_back(cls);
        constraint_target_[j] += class_target_[cls];
      }
    }

    // Cyclic iterative scaling with per-constraint bisection on the
    // multiplicative odds update.
    for (int iter = 0; iter < opts_->max_ipf_iterations; ++iter) {
      double worst = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        double target = constraint_target_[j];
        double current = PositiveMass(j, 1.0);
        worst = std::max(worst, std::fabs(current - target));
        double total = 0.0;
        for (std::size_t cls : constraint_classes_[j]) {
          total += class_weight_[cls];
        }
        if (total <= 0.0) continue;
        double x = SolveScale(j, target, total);
        for (std::size_t cls : constraint_classes_[j]) {
          // Clamp: degenerate constraints (all-positive / all-negative
          // pattern groups) would otherwise drive odds to inf across
          // sweeps and poison the predictions with NaNs.
          class_odds_[cls] =
              std::clamp(class_odds_[cls] * x, 1e-15, 1e15);
        }
      }
      if (worst < opts_->ipf_tolerance) break;
    }
  }

  /// Model prediction per row.
  std::vector<double> Predictions() const {
    std::vector<double> u(rows_->size(), 0.5);
    for (std::size_t r = 0; r < rows_->size(); ++r) {
      double o = class_odds_[class_of_row_[r]];
      u[r] = o / (1.0 + o);
    }
    return u;
  }

  /// Weighted outcome mass (model) of rows in classes matching
  /// constraint j, with odds scaled by `x`.
  double PositiveMass(std::size_t j, double x) const {
    double acc = 0.0;
    for (std::size_t cls : constraint_classes_[j]) {
      double o = class_odds_[cls] * x;
      acc += class_weight_[cls] * (o / (1.0 + o));
    }
    return acc;
  }

 private:
  // Bisection for the odds multiplier hitting `target` positive mass.
  double SolveScale(std::size_t j, double target, double total) const {
    if (target <= 0.0) return 1e-12;
    if (target >= total) return 1e12;
    double lo = 1e-12, hi = 1e12;
    for (int it = 0; it < 70; ++it) {
      double mid = std::sqrt(lo * hi);  // geometric bisection
      if (PositiveMass(j, mid) < target) {
        lo = mid;
      } else {
        hi = mid;
      }
      if (hi / lo < 1.0 + 1e-9) break;
    }
    return std::sqrt(lo * hi);
  }

  const std::vector<FeatureVec>* rows_;
  const std::vector<double>* labels_;
  const std::vector<double>* weights_;
  const LaserlightOptions* opts_;

  std::vector<std::size_t> class_of_row_;
  std::vector<std::vector<std::size_t>> class_members_;
  std::vector<std::vector<std::size_t>> row_signature_;
  std::vector<double> class_weight_;
  std::vector<double> class_target_;
  std::vector<double> class_odds_;
  std::vector<std::vector<std::size_t>> constraint_classes_;
  std::vector<double> constraint_target_;
};

// Projects rows onto the `cap` highest-entropy features (the paper's
// 100-feature PostgreSQL restriction).
std::vector<FeatureVec> ApplyFeatureCap(const std::vector<FeatureVec>& rows,
                                        const std::vector<double>& weights,
                                        std::size_t cap) {
  std::unordered_map<FeatureId, double> mass;
  double total = 0.0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    double w = weights.empty() ? 1.0 : weights[r];
    total += w;
    for (FeatureId f : rows[r].ids) mass[f] += w;
  }
  std::vector<std::pair<double, FeatureId>> scored;
  scored.reserve(mass.size());
  // lint:allow no-unordered-iteration (order erased by the total sort below)
  for (const auto& [f, m] : mass) {
    scored.emplace_back(BinaryEntropy(m / total), f);
  }
  // Entropy descending, feature id ascending on ties: without the id
  // tie-break, equal-mass features at the cap boundary were kept or
  // dropped by unordered_map iteration order.
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  if (scored.size() > cap) scored.resize(cap);
  std::vector<FeatureId> keep;
  keep.reserve(scored.size());
  for (const auto& [h, f] : scored) keep.push_back(f);
  FeatureVec keep_vec(std::move(keep));
  std::vector<FeatureVec> out;
  out.reserve(rows.size());
  for (const FeatureVec& r : rows) {
    out.push_back(FeatureVec::Intersection(r, keep_vec));
  }
  return out;
}

}  // namespace

LaserlightSummary RunLaserlight(const std::vector<FeatureVec>& rows_in,
                                const std::vector<double>& labels,
                                const std::vector<double>& weights,
                                const LaserlightOptions& opts) {
  LOGR_CHECK(rows_in.size() == labels.size());
  LOGR_CHECK(weights.empty() || weights.size() == rows_in.size());
  LaserlightSummary out;
  if (rows_in.empty()) return out;

  std::vector<FeatureVec> rows = rows_in;
  if (opts.feature_cap > 0) {
    rows = ApplyFeatureCap(rows_in, weights, opts.feature_cap);
  }

  Pcg32 rng(opts.seed);
  ExplanationModel model(&rows, &labels, &weights, &opts);
  model.Fit({});
  std::vector<double> u = model.Predictions();
  out.error_trajectory.push_back(LaserlightError(labels, u, weights));

  std::vector<double> row_weights = weights;
  if (row_weights.empty()) row_weights.assign(rows.size(), 1.0);

  std::unordered_map<std::string, bool> used;
  for (std::size_t k = 0; k < opts.max_patterns; ++k) {
    // Sample rows and build candidates: the samples themselves plus
    // pairwise intersections (the "LCA" patterns of explanation tables).
    std::vector<std::size_t> sample;
    for (std::size_t s = 0; s < opts.sample_size; ++s) {
      sample.push_back(rng.NextDiscrete(row_weights));
    }
    std::vector<FeatureVec> candidates;
    auto add_candidate = [&](FeatureVec c) {
      if (c.empty()) return;
      std::string key = c.HashKey();
      if (used.count(key)) return;
      for (const FeatureVec& existing : candidates) {
        if (existing == c) return;
      }
      candidates.push_back(std::move(c));
    };
    for (std::size_t i = 0; i < sample.size(); ++i) {
      add_candidate(rows[sample[i]]);
      for (std::size_t j = i + 1; j < sample.size(); ++j) {
        add_candidate(
            FeatureVec::Intersection(rows[sample[i]], rows[sample[j]]));
      }
    }
    if (candidates.empty()) continue;

    // Pick the candidate with the largest estimated KL gain.
    double best_gain = 0.0;
    std::size_t best_idx = candidates.size();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      double w_p = 0.0, v_mass = 0.0, u_mass = 0.0;
      for (std::size_t r = 0; r < rows.size(); ++r) {
        if (!rows[r].ContainsAll(candidates[c])) continue;
        double w = row_weights[r];
        w_p += w;
        v_mass += w * labels[r];
        u_mass += w * u[r];
      }
      if (w_p <= 0.0) continue;
      constexpr double kEps = 1e-12;
      double v_bar = std::min(1.0 - kEps, std::max(kEps, v_mass / w_p));
      double u_bar = std::min(1.0 - kEps, std::max(kEps, u_mass / w_p));
      double gain = w_p * (v_bar * std::log(v_bar / u_bar) +
                           (1.0 - v_bar) *
                               std::log((1.0 - v_bar) / (1.0 - u_bar)));
      if (gain > best_gain) {
        best_gain = gain;
        best_idx = c;
      }
    }
    if (best_idx == candidates.size()) {
      // No informative candidate this round; spend the round anyway
      // (matches the sampling behaviour of the original algorithm).
      out.error_trajectory.push_back(out.error_trajectory.back());
      continue;
    }

    FeatureVec chosen = candidates[best_idx];
    used[chosen.HashKey()] = true;
    double v_mass = 0.0, w_p = 0.0;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (rows[r].ContainsAll(chosen)) {
        w_p += row_weights[r];
        v_mass += row_weights[r] * labels[r];
      }
    }
    out.patterns.push_back(std::move(chosen));
    out.pattern_means.push_back(w_p > 0.0 ? v_mass / w_p : 0.0);
    model.Fit(out.patterns);
    u = model.Predictions();
    out.error_trajectory.push_back(LaserlightError(labels, u, weights));
  }

  out.predictions = u;
  out.error = out.error_trajectory.back();
  return out;
}

}  // namespace logr
