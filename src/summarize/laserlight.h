// Laserlight: sample-guided explanation tables
// (El Gebaly, Agrawal, Golab, Korn, Srivastava, PVLDB 8(1), 2014 — the
// paper's baseline [20]).
//
// Summarizes data tuples t (binary feature vectors) augmented with a
// binary outcome v(t). The summary is a list of patterns; the prediction
// model u(t) is the maximum-entropy estimate consistent with each
// pattern's observed outcome mass, fitted by iterative scaling over
// pattern-containment classes of the *observed* tuples. Greedy mining
// draws `sample_size` tuples per round (16 in the paper's configuration,
// App. D.1), generates candidate patterns from sampled tuples and their
// pairwise intersections, and keeps the candidate with the highest
// estimated KL gain.
#ifndef LOGR_SUMMARIZE_LASERLIGHT_H_
#define LOGR_SUMMARIZE_LASERLIGHT_H_

#include <cstdint>
#include <vector>

#include "workload/feature_vec.h"

namespace logr {

struct LaserlightOptions {
  std::size_t max_patterns = 15;
  std::size_t sample_size = 16;  // candidate-sampling fan-out per round
  std::uint64_t seed = 5;
  int max_ipf_iterations = 200;
  double ipf_tolerance = 1e-9;
  /// Optional feature cap reproducing the PostgreSQL 100-argument limit
  /// the paper hit (Sec. 7.2.2): only the `feature_cap` highest-entropy
  /// features are visible to the miner. 0 = unlimited.
  std::size_t feature_cap = 0;
};

struct LaserlightSummary {
  std::vector<FeatureVec> patterns;      // excludes the implicit root
  std::vector<double> pattern_means;     // observed outcome mean per pattern
  std::vector<double> predictions;       // u(t) per input row
  std::vector<double> error_trajectory;  // error after 0,1,...,k patterns
  double error = 0.0;                    // final Laserlight error
};

/// Runs Laserlight. `labels` in [0,1] (outcome mean per distinct row),
/// `weights` the row multiplicities (empty = uniform).
LaserlightSummary RunLaserlight(const std::vector<FeatureVec>& rows,
                                const std::vector<double>& labels,
                                const std::vector<double>& weights,
                                const LaserlightOptions& opts);

}  // namespace logr

#endif  // LOGR_SUMMARIZE_LASERLIGHT_H_
