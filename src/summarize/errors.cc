#include "summarize/errors.h"

#include <cmath>

#include "maxent/entropy.h"
#include "util/check.h"

namespace logr {

double LaserlightError(const std::vector<double>& labels,
                       const std::vector<double>& predictions,
                       const std::vector<double>& weights) {
  LOGR_CHECK(labels.size() == predictions.size());
  LOGR_CHECK(weights.empty() || weights.size() == labels.size());
  constexpr double kEps = 1e-12;
  double acc = 0.0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    double v = labels[i];
    double u = std::min(1.0 - kEps, std::max(kEps, predictions[i]));
    double w = weights.empty() ? 1.0 : weights[i];
    double term = 0.0;
    if (v > 0.0) term += v * std::log(v / u);
    if (v < 1.0) term += (1.0 - v) * std::log((1.0 - v) / (1.0 - u));
    acc += w * term;
  }
  return acc;
}

double LaserlightErrorOfNaive(double total_weight, double positive_rate) {
  return total_weight * BinaryEntropy(positive_rate);
}

double MtvError(double total_weight, double model_entropy,
                std::size_t verbosity) {
  return total_weight * model_entropy +
         0.5 * static_cast<double>(verbosity) * std::log(total_weight);
}

double MtvErrorOfNaive(double total_weight,
                       const std::vector<double>& feature_marginals) {
  double h = 0.0;
  std::size_t verbosity = 0;
  for (double p : feature_marginals) {
    if (p > 0.0) {
      h += BinaryEntropy(p);
      ++verbosity;
    }
  }
  return MtvError(total_weight, h, verbosity);
}

}  // namespace logr
