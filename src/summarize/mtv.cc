#include "summarize/mtv.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "maxent/factored_model.h"
#include "summarize/errors.h"
#include "util/check.h"

namespace logr {

namespace {

double TotalWeight(const std::vector<FeatureVec>& rows,
                   const std::vector<double>& weights) {
  if (weights.empty()) return static_cast<double>(rows.size());
  double t = 0.0;
  for (double w : weights) t += w;
  return t;
}

}  // namespace

MtvSummary RunMtv(const std::vector<FeatureVec>& rows,
                  const std::vector<double>& weights, std::size_t n_features,
                  std::size_t num_patterns, const MtvOptions& opts) {
  (void)n_features;
  MtvSummary out;
  if (num_patterns > opts.max_patterns) {
    // Reproduces the baseline implementation's behaviour: requests over
    // the ceiling abort instead of degrading (paper Sec. 7.2.2 / 8.1).
    out.error_message =
        "MTV: inference over " + std::to_string(opts.max_patterns) +
        " patterns is not supported (practical inference ceiling)";
    return out;
  }
  if (rows.empty()) return out;

  const double total = TotalWeight(rows, weights);

  // Background knowledge (Mampaey et al.): the per-item column margins.
  std::unordered_map<FeatureId, double> margin;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    double w = weights.empty() ? 1.0 : weights[r];
    for (FeatureId f : rows[r].ids) margin[f] += w;
  }
  std::vector<std::pair<FeatureId, double>> singletons;
  singletons.reserve(margin.size());
  // Order is erased by the unique-id sort below.
  // lint:allow no-unordered-iteration (sorted below)
  for (const auto& [f, mass] : margin) {
    singletons.emplace_back(f, mass / total);
  }
  std::sort(singletons.begin(), singletons.end());

  // Candidate pool: frequent itemsets of size >= 2.
  AprioriOptions ap;
  ap.min_support = opts.min_support;
  ap.max_size = opts.max_itemset_size;
  ap.max_results = opts.max_candidates;
  ap.min_size = 2;
  std::vector<FrequentItemset> candidates =
      MineFrequentItemsets(rows, weights, ap);

  auto support_of = [&](const FeatureVec& b) {
    double mass = 0.0;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (rows[r].ContainsAll(b)) {
        mass += weights.empty() ? 1.0 : weights[r];
      }
    }
    return mass / total;
  };

  auto refit = [&](const std::vector<FeatureVec>& itemsets) {
    std::vector<FactoredMaxEnt::PatternConstraint> constraints;
    constraints.reserve(itemsets.size());
    for (const FeatureVec& b : itemsets) {
      constraints.push_back({b, support_of(b)});
    }
    return FactoredMaxEnt(singletons, std::move(constraints));
  };

  FactoredMaxEnt model = refit(out.itemsets);
  out.model_entropy = model.EntropyNats();
  out.bic = MtvError(total, out.model_entropy, out.itemsets.size());
  out.bic_trajectory.push_back(out.bic);

  std::vector<bool> taken(candidates.size(), false);
  for (std::size_t k = 0; k < num_patterns; ++k) {
    // MTV's heuristic h: divergence between empirical support and the
    // current model's estimate, weighted by support.
    double best_score = 0.0;
    std::size_t best = candidates.size();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (taken[c]) continue;
      double q = candidates[c].support;
      double p = model.MarginalOf(candidates[c].items);
      constexpr double kEps = 1e-12;
      double pq = std::min(1.0 - kEps, std::max(kEps, p));
      double score = q * std::fabs(std::log(q / pq));
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    if (best == candidates.size()) break;  // candidate pool exhausted

    std::vector<FeatureVec> tentative = out.itemsets;
    tentative.push_back(candidates[best].items);
    FactoredMaxEnt next = refit(tentative);
    double next_entropy = next.EntropyNats();
    double next_bic = MtvError(total, next_entropy, tentative.size());
    if (opts.bic_early_stop && next_bic >= out.bic) break;

    taken[best] = true;
    out.itemsets = std::move(tentative);
    out.supports.push_back(candidates[best].support);
    model = std::move(next);
    out.model_entropy = next_entropy;
    out.bic = next_bic;
    out.bic_trajectory.push_back(out.bic);
  }
  return out;
}

}  // namespace logr
