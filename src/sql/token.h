// Token model for the SQL lexer.
#ifndef LOGR_SQL_TOKEN_H_
#define LOGR_SQL_TOKEN_H_

#include <string>
#include <string_view>

namespace logr::sql {

enum class TokenType {
  kIdentifier,   // messages, "Quoted Name", [bracketed]
  kKeyword,      // SELECT, FROM, WHERE, ... (uppercased in `text`)
  kInteger,      // 42
  kFloat,        // 4.2, .5, 1e9
  kString,       // 'literal' (quotes stripped, '' unescaped)
  kParameter,    // ? or :name or $1
  kOperator,     // = != <> < <= > >= + - * / % || . , ( ) ;
  kEndOfInput,
  kError,        // lexical error; message in `text`
};

struct Token {
  TokenType type = TokenType::kEndOfInput;
  std::string text;       // normalized text (keywords uppercased)
  std::size_t position = 0;  // byte offset in the input

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsOperator(std::string_view op) const {
    return type == TokenType::kOperator && text == op;
  }
};

/// Returns true if `word` (uppercase) is a reserved SQL keyword.
bool IsReservedKeyword(std::string_view upper_word);

}  // namespace logr::sql

#endif  // LOGR_SQL_TOKEN_H_
