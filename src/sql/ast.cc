#include "sql/ast.h"

namespace logr::sql {

std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>(kind);
  out->table = table;
  out->column = column;
  out->literal_kind = literal_kind;
  out->literal_text = literal_text;
  out->bool_value = bool_value;
  out->unary_op = unary_op;
  out->binary_op = binary_op;
  out->distinct_arg = distinct_arg;
  out->negated = negated;
  out->has_case_operand = has_case_operand;
  out->has_else = has_else;
  out->n_when = n_when;
  out->children.reserve(children.size());
  for (const auto& c : children) {
    out->children.push_back(c ? c->Clone() : nullptr);
  }
  if (subquery) out->subquery = subquery->Clone();
  return out;
}

ExprPtr MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>(ExprKind::kColumnRef);
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeParameter() {
  return std::make_unique<Expr>(ExprKind::kParameter);
}

ExprPtr MakeIntLiteral(long long v) {
  auto e = std::make_unique<Expr>(ExprKind::kLiteral);
  e->literal_kind = LiteralKind::kInteger;
  e->literal_text = std::to_string(v);
  return e;
}

ExprPtr MakeStringLiteral(std::string v) {
  auto e = std::make_unique<Expr>(ExprKind::kLiteral);
  e->literal_kind = LiteralKind::kString;
  e->literal_text = std::move(v);
  return e;
}

ExprPtr MakeNullLiteral() {
  auto e = std::make_unique<Expr>(ExprKind::kLiteral);
  e->literal_kind = LiteralKind::kNull;
  e->literal_text = "NULL";
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>(ExprKind::kBinary);
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>(ExprKind::kUnary);
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeStar() { return std::make_unique<Expr>(ExprKind::kStar); }

std::unique_ptr<TableRef> TableRef::Clone() const {
  auto out = std::make_unique<TableRef>();
  out->kind = kind;
  out->table_name = table_name;
  out->alias = alias;
  if (derived) out->derived = derived->Clone();
  out->join_type = join_type;
  if (left) out->left = left->Clone();
  if (right) out->right = right->Clone();
  if (join_condition) out->join_condition = join_condition->Clone();
  return out;
}

SelectItem SelectItem::Clone() const {
  SelectItem out;
  out.expr = expr ? expr->Clone() : nullptr;
  out.alias = alias;
  return out;
}

OrderItem OrderItem::Clone() const {
  OrderItem out;
  out.expr = expr ? expr->Clone() : nullptr;
  out.ascending = ascending;
  return out;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = distinct;
  out->items.reserve(items.size());
  for (const auto& item : items) out->items.push_back(item.Clone());
  out->from.reserve(from.size());
  for (const auto& t : from) out->from.push_back(t->Clone());
  if (where) out->where = where->Clone();
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  if (having) out->having = having->Clone();
  for (const auto& o : order_by) out->order_by.push_back(o.Clone());
  if (limit) out->limit = limit->Clone();
  if (offset) out->offset = offset->Clone();
  return out;
}

std::unique_ptr<Statement> Statement::Clone() const {
  auto out = std::make_unique<Statement>();
  out->union_all = union_all;
  out->selects.reserve(selects.size());
  for (const auto& s : selects) out->selects.push_back(s->Clone());
  return out;
}

}  // namespace logr::sql
