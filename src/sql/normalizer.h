// Query regularization (paper Section 7, "Query Regularization" and
// "Constant Removal").
//
// The pipeline rewrites parsed statements into the conjunctive form the
// Aligon feature scheme expects:
//   1. identifiers are lowercased (SQL is case-insensitive);
//   2. literal constants are replaced by `?` parameters ("constant
//      removal"), optionally preserving LIMIT/OFFSET counts;
//   3. NOT is pushed down to atoms (De Morgan; comparisons are inverted);
//   4. BETWEEN becomes a pair of range atoms, IN-lists become equality
//      disjunctions (which collapse to a single atom after constant
//      removal);
//   5. each WHERE clause is expanded to disjunctive normal form with a
//      configurable size cap, and each disjunct becomes one conjunctive
//      SELECT block of a UNION.
//
// A statement is *conjunctive* when the result is a single UNION-free
// block; it is *rewritable* when DNF expansion succeeds within the cap.
// These two flags feed the Table 1 statistics.
#ifndef LOGR_SQL_NORMALIZER_H_
#define LOGR_SQL_NORMALIZER_H_

#include <memory>

#include "sql/ast.h"

namespace logr::sql {

struct RegularizeOptions {
  /// Replace literal constants with `?`.
  bool anonymize_constants = true;
  /// Keep integer constants in LIMIT / OFFSET (they carry workload
  /// information, cf. the "Limit 500" cluster of Fig. 10).
  bool keep_limit_constants = true;
  /// Maximum number of DNF disjuncts before giving up on the rewrite.
  std::size_t max_dnf_disjuncts = 64;
};

struct RegularizeInfo {
  /// True if the regularized statement is a single conjunctive block.
  bool conjunctive = false;
  /// True if the statement could be rewritten into a UNION of conjunctive
  /// blocks within the DNF cap. Conjunctive implies rewritable.
  bool rewritable = false;
};

/// True if `stmt` is already a single conjunctive SELECT block: no UNION,
/// and its (NOT-normalized) WHERE / HAVING / join conditions contain no
/// disjunction. Multi-item IN lists and NOT BETWEEN are disjunctions;
/// BETWEEN and single-item IN are conjunctive. This classifies the
/// *original* query (Table 1's "# Distinct conjunctive queries"), before
/// constant removal can collapse IN-lists.
bool IsConjunctive(const Statement& stmt);

/// Lowercases all table / column / function / alias identifiers in place.
void LowercaseIdentifiers(Statement* stmt);

/// Replaces literals with `?` in place (recursing into subqueries).
void AnonymizeConstants(Statement* stmt, bool keep_limit_constants);

/// Returns an equivalent expression with NOT pushed down to atoms,
/// BETWEEN split, and IN-lists expanded to equality disjunctions.
ExprPtr NormalizeBooleanExpr(ExprPtr e);

/// Full regularization pipeline. Never fails: if DNF expansion blows the
/// cap, the original (normalized) statement is returned with
/// `info->rewritable == false`.
StatementPtr Regularize(const Statement& stmt, const RegularizeOptions& opts,
                        RegularizeInfo* info);

/// Structural equality via canonical printing.
bool ExprEquals(const Expr& a, const Expr& b);

}  // namespace logr::sql

#endif  // LOGR_SQL_NORMALIZER_H_
