// Abstract syntax tree for the supported SQL dialect (SELECT statements,
// possibly UNION'ed; other statement kinds are recognized by the parser
// but rejected, matching the paper's SELECT-only analysis funnel).
#ifndef LOGR_SQL_AST_H_
#define LOGR_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace logr::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kColumnRef,   // [table.]column
  kLiteral,     // 42, 4.2, 'str', NULL, TRUE/FALSE
  kParameter,   // ? (all parameter syntaxes are normalized to ?)
  kStar,        // * or table.*
  kUnary,       // NOT x, -x, +x
  kBinary,      // x op y  (comparison, arithmetic, AND/OR, ||)
  kFunction,    // f(args...), COUNT(DISTINCT x), CAST(x AS t)
  kInList,      // x [NOT] IN (a, b, ...)
  kInSubquery,  // x [NOT] IN (SELECT ...)
  kBetween,     // x [NOT] BETWEEN lo AND hi
  kIsNull,      // x IS [NOT] NULL
  kLike,        // x [NOT] LIKE pattern [ESCAPE e]
  kExists,      // [NOT] EXISTS (SELECT ...)
  kCase,        // CASE [x] WHEN .. THEN .. [ELSE ..] END
  kSubquery,    // scalar subquery
};

enum class LiteralKind { kInteger, kFloat, kString, kNull, kBool };

enum class BinaryOp {
  kEq, kNe, kLt, kLe, kGt, kGe,      // comparisons
  kAdd, kSub, kMul, kDiv, kMod,       // arithmetic
  kAnd, kOr,                          // boolean
  kConcat,                            // ||
};

enum class UnaryOp { kNot, kNeg, kPlus };

struct SelectStmt;  // forward

struct Expr {
  ExprKind kind;

  // kColumnRef
  std::string table;   // optional qualifier (may be empty)
  std::string column;  // also function name for kFunction

  // kLiteral
  LiteralKind literal_kind = LiteralKind::kNull;
  std::string literal_text;  // original spelling ('value' for strings)
  bool bool_value = false;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kEq;

  // Children. Layout by kind:
  //   kUnary:      [operand]
  //   kBinary:     [lhs, rhs]
  //   kFunction:   args
  //   kInList:     [lhs, item0, item1, ...]
  //   kBetween:    [x, lo, hi]
  //   kIsNull:     [x]
  //   kLike:       [x, pattern(, escape)]
  //   kCase:       [operand?] + when/then pairs + [else?]  (see case fields)
  std::vector<std::unique_ptr<Expr>> children;

  // kFunction extras
  bool distinct_arg = false;  // COUNT(DISTINCT x)

  // kInList / kBetween / kIsNull / kLike / kExists negation
  bool negated = false;

  // kCase bookkeeping: children = [operand (if has_case_operand)] then
  // n_when (when,then) pairs, then [else (if has_else)].
  bool has_case_operand = false;
  bool has_else = false;
  std::size_t n_when = 0;

  // kSubquery / kInSubquery / kExists
  std::unique_ptr<SelectStmt> subquery;

  Expr() : kind(ExprKind::kLiteral) {}
  explicit Expr(ExprKind k) : kind(k) {}

  /// Deep copy.
  std::unique_ptr<Expr> Clone() const;
};

using ExprPtr = std::unique_ptr<Expr>;

// Convenience constructors.
ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeParameter();
ExprPtr MakeIntLiteral(long long v);
ExprPtr MakeStringLiteral(std::string v);
ExprPtr MakeNullLiteral();
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeStar();

// ---------------------------------------------------------------------------
// Table references
// ---------------------------------------------------------------------------

enum class TableRefKind { kBaseTable, kDerived, kJoin };
enum class JoinType { kInner, kLeft, kRight, kFull, kCross };

struct TableRef {
  TableRefKind kind = TableRefKind::kBaseTable;

  // kBaseTable
  std::string table_name;

  // kBaseTable / kDerived
  std::string alias;

  // kDerived
  std::unique_ptr<SelectStmt> derived;

  // kJoin
  JoinType join_type = JoinType::kInner;
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  ExprPtr join_condition;  // may be null (CROSS / NATURAL)

  std::unique_ptr<TableRef> Clone() const;
};

using TableRefPtr = std::unique_ptr<TableRef>;

// ---------------------------------------------------------------------------
// SELECT statement
// ---------------------------------------------------------------------------

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty if none

  SelectItem Clone() const;
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;

  OrderItem Clone() const;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRefPtr> from;  // comma-separated FROM list
  ExprPtr where;                  // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;                 // may be null
  std::vector<OrderItem> order_by;
  ExprPtr limit;                  // may be null
  ExprPtr offset;                 // may be null

  std::unique_ptr<SelectStmt> Clone() const;
};

using SelectPtr = std::unique_ptr<SelectStmt>;

/// A full statement: one or more SELECT blocks combined with UNION [ALL].
struct Statement {
  std::vector<SelectPtr> selects;  // size >= 1
  bool union_all = false;          // true if any combinator was UNION ALL

  std::unique_ptr<Statement> Clone() const;
};

using StatementPtr = std::unique_ptr<Statement>;

}  // namespace logr::sql

#endif  // LOGR_SQL_AST_H_
