// AST -> SQL text rendering.
//
// Printing is canonical: keywords uppercase, identifiers as stored (the
// normalizer lowercases them), minimal parentheses driven by operator
// precedence. Round-tripping Parse(Print(ast)) yields an equal AST, which
// the test-suite checks property-style.
#ifndef LOGR_SQL_PRINTER_H_
#define LOGR_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace logr::sql {

/// Renders an expression.
std::string PrintExpr(const Expr& e);

/// Renders one SELECT block.
std::string PrintSelect(const SelectStmt& s);

/// Renders a full (possibly UNION'ed) statement.
std::string PrintStatement(const Statement& s);

}  // namespace logr::sql

#endif  // LOGR_SQL_PRINTER_H_
