#include "sql/printer.h"

#include "util/check.h"
#include "util/string_util.h"

namespace logr::sql {

namespace {

// Precedence levels for parenthesization (higher binds tighter).
int Precedence(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kBinary:
      switch (e.binary_op) {
        case BinaryOp::kOr: return 1;
        case BinaryOp::kAnd: return 2;
        case BinaryOp::kEq: case BinaryOp::kNe: case BinaryOp::kLt:
        case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe:
          return 4;
        case BinaryOp::kConcat: return 5;
        case BinaryOp::kAdd: case BinaryOp::kSub: return 6;
        case BinaryOp::kMul: case BinaryOp::kDiv: case BinaryOp::kMod:
          return 7;
      }
      return 9;
    case ExprKind::kUnary:
      return e.unary_op == UnaryOp::kNot ? 3 : 8;
    case ExprKind::kInList:
    case ExprKind::kInSubquery:
    case ExprKind::kBetween:
    case ExprKind::kIsNull:
    case ExprKind::kLike:
      return 4;
    default:
      return 10;  // primaries never need parens
  }
}

const char* BinaryOpText(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kConcat: return "||";
  }
  return "?";
}

std::string PrintChild(const Expr& parent, const Expr& child) {
  std::string s = PrintExpr(child);
  if (Precedence(child) < Precedence(parent)) {
    return "(" + s + ")";
  }
  return s;
}

std::string PrintTableRef(const TableRef& t) {
  switch (t.kind) {
    case TableRefKind::kBaseTable: {
      std::string s = t.table_name;
      if (!t.alias.empty()) s += " " + t.alias;
      return s;
    }
    case TableRefKind::kDerived: {
      std::string s = "(" + PrintSelect(*t.derived) + ")";
      if (!t.alias.empty()) s += " " + t.alias;
      return s;
    }
    case TableRefKind::kJoin: {
      const char* kw = "JOIN";
      switch (t.join_type) {
        case JoinType::kInner: kw = "JOIN"; break;
        case JoinType::kLeft: kw = "LEFT JOIN"; break;
        case JoinType::kRight: kw = "RIGHT JOIN"; break;
        case JoinType::kFull: kw = "FULL JOIN"; break;
        case JoinType::kCross: kw = "CROSS JOIN"; break;
      }
      std::string s =
          PrintTableRef(*t.left) + " " + kw + " " + PrintTableRef(*t.right);
      if (t.join_condition) {
        s += " ON " + PrintExpr(*t.join_condition);
      }
      return s;
    }
  }
  return "";
}

std::string QuoteString(const std::string& raw) {
  std::string out = "'";
  for (char c : raw) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

}  // namespace

std::string PrintExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
      return e.table.empty() ? e.column : e.table + "." + e.column;
    case ExprKind::kLiteral:
      switch (e.literal_kind) {
        case LiteralKind::kString: return QuoteString(e.literal_text);
        case LiteralKind::kNull: return "NULL";
        case LiteralKind::kBool: return e.bool_value ? "TRUE" : "FALSE";
        default: return e.literal_text;
      }
    case ExprKind::kParameter:
      return "?";
    case ExprKind::kStar:
      return e.table.empty() ? "*" : e.table + ".*";
    case ExprKind::kUnary: {
      const Expr& c = *e.children[0];
      switch (e.unary_op) {
        case UnaryOp::kNot: return "NOT " + PrintChild(e, c);
        case UnaryOp::kNeg: return "-" + PrintChild(e, c);
        case UnaryOp::kPlus: return "+" + PrintChild(e, c);
      }
      return "";
    }
    case ExprKind::kBinary:
      return PrintChild(e, *e.children[0]) + " " +
             BinaryOpText(e.binary_op) + " " + PrintChild(e, *e.children[1]);
    case ExprKind::kFunction: {
      if (e.column == "CAST" && e.children.size() == 1) {
        return "CAST(" + PrintExpr(*e.children[0]) + " AS " + e.table + ")";
      }
      std::vector<std::string> args;
      for (const auto& c : e.children) args.push_back(PrintExpr(*c));
      return e.column + "(" + (e.distinct_arg ? "DISTINCT " : "") +
             Join(args, ", ") + ")";
    }
    case ExprKind::kInList: {
      std::vector<std::string> items;
      for (std::size_t i = 1; i < e.children.size(); ++i) {
        items.push_back(PrintExpr(*e.children[i]));
      }
      return PrintChild(e, *e.children[0]) + (e.negated ? " NOT IN (" : " IN (") +
             Join(items, ", ") + ")";
    }
    case ExprKind::kInSubquery:
      return PrintChild(e, *e.children[0]) +
             (e.negated ? " NOT IN (" : " IN (") + PrintSelect(*e.subquery) +
             ")";
    case ExprKind::kBetween:
      return PrintChild(e, *e.children[0]) +
             (e.negated ? " NOT BETWEEN " : " BETWEEN ") +
             PrintChild(e, *e.children[1]) + " AND " +
             PrintChild(e, *e.children[2]);
    case ExprKind::kIsNull:
      return PrintChild(e, *e.children[0]) +
             (e.negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kLike: {
      std::string s = PrintChild(e, *e.children[0]) +
                      (e.negated ? " NOT LIKE " : " LIKE ") +
                      PrintChild(e, *e.children[1]);
      if (e.children.size() > 2) s += " ESCAPE " + PrintExpr(*e.children[2]);
      return s;
    }
    case ExprKind::kExists:
      return std::string(e.negated ? "NOT " : "") + "EXISTS (" +
             PrintSelect(*e.subquery) + ")";
    case ExprKind::kCase: {
      std::string s = "CASE";
      std::size_t idx = 0;
      if (e.has_case_operand) {
        s += " " + PrintExpr(*e.children[idx++]);
      }
      for (std::size_t w = 0; w < e.n_when; ++w) {
        s += " WHEN " + PrintExpr(*e.children[idx++]);
        s += " THEN " + PrintExpr(*e.children[idx++]);
      }
      if (e.has_else) {
        s += " ELSE " + PrintExpr(*e.children[idx++]);
      }
      s += " END";
      return s;
    }
    case ExprKind::kSubquery:
      return "(" + PrintSelect(*e.subquery) + ")";
  }
  return "";
}

std::string PrintSelect(const SelectStmt& s) {
  std::string out = "SELECT ";
  if (s.distinct) out += "DISTINCT ";
  std::vector<std::string> items;
  for (const auto& item : s.items) {
    std::string t = PrintExpr(*item.expr);
    if (!item.alias.empty()) t += " AS " + item.alias;
    items.push_back(std::move(t));
  }
  out += Join(items, ", ");
  if (!s.from.empty()) {
    std::vector<std::string> tables;
    for (const auto& t : s.from) tables.push_back(PrintTableRef(*t));
    out += " FROM " + Join(tables, ", ");
  }
  if (s.where) out += " WHERE " + PrintExpr(*s.where);
  if (!s.group_by.empty()) {
    std::vector<std::string> gs;
    for (const auto& g : s.group_by) gs.push_back(PrintExpr(*g));
    out += " GROUP BY " + Join(gs, ", ");
  }
  if (s.having) out += " HAVING " + PrintExpr(*s.having);
  if (!s.order_by.empty()) {
    std::vector<std::string> os;
    for (const auto& o : s.order_by) {
      os.push_back(PrintExpr(*o.expr) + (o.ascending ? "" : " DESC"));
    }
    out += " ORDER BY " + Join(os, ", ");
  }
  if (s.limit) out += " LIMIT " + PrintExpr(*s.limit);
  if (s.offset) out += " OFFSET " + PrintExpr(*s.offset);
  return out;
}

std::string PrintStatement(const Statement& s) {
  LOGR_CHECK(!s.selects.empty());
  std::string out = PrintSelect(*s.selects[0]);
  for (std::size_t i = 1; i < s.selects.size(); ++i) {
    out += s.union_all ? " UNION ALL " : " UNION ";
    out += PrintSelect(*s.selects[i]);
  }
  return out;
}

}  // namespace logr::sql
