// Hand-written SQL lexer.
//
// Supports the SQL dialect found in application query logs: standard
// punctuation and operators, single-quoted strings with '' escapes,
// double-quoted and [bracketed] identifiers, JDBC `?` / named `:param` /
// positional `$n` parameters, line (`--`) and block (`/* */`) comments.
#ifndef LOGR_SQL_LEXER_H_
#define LOGR_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "sql/token.h"

namespace logr::sql {

/// Tokenizes `input`. The final token is always kEndOfInput (or kError at
/// the failure position, in which case tokenization stops there).
std::vector<Token> Lex(std::string_view input);

}  // namespace logr::sql

#endif  // LOGR_SQL_LEXER_H_
