#include "sql/normalizer.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "sql/printer.h"
#include "util/check.h"
#include "util/string_util.h"

namespace logr::sql {

namespace {

void LowercaseExpr(Expr* e);
void LowercaseSelect(SelectStmt* s);

void LowercaseTableRef(TableRef* t) {
  t->table_name = ToLower(t->table_name);
  t->alias = ToLower(t->alias);
  if (t->derived) LowercaseSelect(t->derived.get());
  if (t->left) LowercaseTableRef(t->left.get());
  if (t->right) LowercaseTableRef(t->right.get());
  if (t->join_condition) LowercaseExpr(t->join_condition.get());
}

void LowercaseExpr(Expr* e) {
  e->table = ToLower(e->table);
  if (e->kind == ExprKind::kColumnRef || e->kind == ExprKind::kFunction) {
    e->column = ToLower(e->column);
  }
  for (auto& c : e->children) {
    if (c) LowercaseExpr(c.get());
  }
  if (e->subquery) LowercaseSelect(e->subquery.get());
}

void LowercaseSelect(SelectStmt* s) {
  for (auto& item : s->items) {
    LowercaseExpr(item.expr.get());
    item.alias = ToLower(item.alias);
  }
  for (auto& t : s->from) LowercaseTableRef(t.get());
  if (s->where) LowercaseExpr(s->where.get());
  for (auto& g : s->group_by) LowercaseExpr(g.get());
  if (s->having) LowercaseExpr(s->having.get());
  for (auto& o : s->order_by) LowercaseExpr(o.expr.get());
  if (s->limit) LowercaseExpr(s->limit.get());
  if (s->offset) LowercaseExpr(s->offset.get());
}

void AnonymizeExpr(Expr* e);
void AnonymizeSelect(SelectStmt* s, bool keep_limit);

void AnonymizeTableRef(TableRef* t, bool keep_limit) {
  if (t->derived) AnonymizeSelect(t->derived.get(), keep_limit);
  if (t->left) AnonymizeTableRef(t->left.get(), keep_limit);
  if (t->right) AnonymizeTableRef(t->right.get(), keep_limit);
  if (t->join_condition) AnonymizeExpr(t->join_condition.get());
}

void AnonymizeExpr(Expr* e) {
  if (e->kind == ExprKind::kLiteral) {
    *e = Expr(ExprKind::kParameter);
    return;
  }
  for (auto& c : e->children) {
    if (c) AnonymizeExpr(c.get());
  }
  if (e->subquery) AnonymizeSelect(e->subquery.get(), /*keep_limit=*/true);
}

void AnonymizeSelect(SelectStmt* s, bool keep_limit) {
  for (auto& item : s->items) AnonymizeExpr(item.expr.get());
  for (auto& t : s->from) AnonymizeTableRef(t.get(), keep_limit);
  if (s->where) AnonymizeExpr(s->where.get());
  for (auto& g : s->group_by) AnonymizeExpr(g.get());
  if (s->having) AnonymizeExpr(s->having.get());
  for (auto& o : s->order_by) AnonymizeExpr(o.expr.get());
  if (!keep_limit) {
    if (s->limit) AnonymizeExpr(s->limit.get());
    if (s->offset) AnonymizeExpr(s->offset.get());
  }
}

BinaryOp InvertComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return BinaryOp::kNe;
    case BinaryOp::kNe: return BinaryOp::kEq;
    case BinaryOp::kLt: return BinaryOp::kGe;
    case BinaryOp::kLe: return BinaryOp::kGt;
    case BinaryOp::kGt: return BinaryOp::kLe;
    case BinaryOp::kGe: return BinaryOp::kLt;
    default: LOGR_CHECK(false); return op;
  }
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: case BinaryOp::kNe: case BinaryOp::kLt:
    case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

// Forward declaration: normalize with an optional pending negation.
ExprPtr NormalizeNeg(ExprPtr e, bool negate);

ExprPtr NormalizeNeg(ExprPtr e, bool negate) {
  switch (e->kind) {
    case ExprKind::kUnary:
      if (e->unary_op == UnaryOp::kNot) {
        ExprPtr child = std::move(e->children[0]);
        return NormalizeNeg(std::move(child), !negate);
      }
      return negate ? MakeUnary(UnaryOp::kNot, std::move(e)) : std::move(e);
    case ExprKind::kBinary: {
      BinaryOp op = e->binary_op;
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        ExprPtr l = NormalizeNeg(std::move(e->children[0]), negate);
        ExprPtr r = NormalizeNeg(std::move(e->children[1]), negate);
        BinaryOp out_op = op;
        if (negate) {
          out_op = (op == BinaryOp::kAnd) ? BinaryOp::kOr : BinaryOp::kAnd;
        }
        return MakeBinary(out_op, std::move(l), std::move(r));
      }
      if (IsComparison(op)) {
        if (negate) e->binary_op = InvertComparison(op);
        return e;
      }
      // Arithmetic / concat under negation: wrap.
      return negate ? MakeUnary(UnaryOp::kNot, std::move(e)) : std::move(e);
    }
    case ExprKind::kBetween: {
      bool effective_neg = e->negated != negate;
      ExprPtr x = std::move(e->children[0]);
      ExprPtr lo = std::move(e->children[1]);
      ExprPtr hi = std::move(e->children[2]);
      ExprPtr x_copy = x->Clone();
      if (!effective_neg) {
        // x >= lo AND x <= hi
        ExprPtr lo_atom = MakeBinary(BinaryOp::kGe, std::move(x_copy),
                                     std::move(lo));
        ExprPtr hi_atom = MakeBinary(BinaryOp::kLe, std::move(x),
                                     std::move(hi));
        return MakeBinary(BinaryOp::kAnd, std::move(lo_atom),
                          std::move(hi_atom));
      }
      // x < lo OR x > hi
      ExprPtr lo_atom = MakeBinary(BinaryOp::kLt, std::move(x_copy),
                                   std::move(lo));
      ExprPtr hi_atom = MakeBinary(BinaryOp::kGt, std::move(x),
                                   std::move(hi));
      return MakeBinary(BinaryOp::kOr, std::move(lo_atom),
                        std::move(hi_atom));
    }
    case ExprKind::kInList: {
      bool effective_neg = e->negated != negate;
      ExprPtr lhs = std::move(e->children[0]);
      // Expand to a chain of (in)equalities, deduplicating identical
      // disjuncts (after constant removal all items are `?`).
      std::vector<ExprPtr> terms;
      std::set<std::string> seen;
      for (std::size_t i = 1; i < e->children.size(); ++i) {
        BinaryOp op = effective_neg ? BinaryOp::kNe : BinaryOp::kEq;
        ExprPtr term =
            MakeBinary(op, lhs->Clone(), std::move(e->children[i]));
        std::string key = PrintExpr(*term);
        if (seen.insert(key).second) terms.push_back(std::move(term));
      }
      LOGR_CHECK(!terms.empty());
      ExprPtr out = std::move(terms[0]);
      for (std::size_t i = 1; i < terms.size(); ++i) {
        // IN = disjunction of equalities; NOT IN = conjunction of !=.
        out = MakeBinary(effective_neg ? BinaryOp::kAnd : BinaryOp::kOr,
                         std::move(out), std::move(terms[i]));
      }
      return out;
    }
    case ExprKind::kIsNull:
    case ExprKind::kLike:
    case ExprKind::kExists:
    case ExprKind::kInSubquery:
      if (negate) e->negated = !e->negated;
      return e;
    default:
      return negate ? MakeUnary(UnaryOp::kNot, std::move(e)) : std::move(e);
  }
}

// DNF expansion. Each inner vector is one conjunct list (a disjunct of the
// DNF). Returns false if the expansion exceeds `cap`.
bool ToDnf(const Expr& e, std::size_t cap,
           std::vector<std::vector<const Expr*>>* out) {
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kOr) {
    std::vector<std::vector<const Expr*>> l, r;
    if (!ToDnf(*e.children[0], cap, &l)) return false;
    if (!ToDnf(*e.children[1], cap, &r)) return false;
    out->clear();
    out->reserve(l.size() + r.size());
    for (auto& d : l) out->push_back(std::move(d));
    for (auto& d : r) out->push_back(std::move(d));
    return out->size() <= cap;
  }
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kAnd) {
    std::vector<std::vector<const Expr*>> l, r;
    if (!ToDnf(*e.children[0], cap, &l)) return false;
    if (!ToDnf(*e.children[1], cap, &r)) return false;
    if (l.size() * r.size() > cap) return false;
    out->clear();
    out->reserve(l.size() * r.size());
    for (const auto& dl : l) {
      for (const auto& dr : r) {
        std::vector<const Expr*> merged = dl;
        merged.insert(merged.end(), dr.begin(), dr.end());
        out->push_back(std::move(merged));
      }
    }
    return true;
  }
  out->assign(1, std::vector<const Expr*>{&e});
  return true;
}

// Rebuilds a conjunction from atoms, deduplicating by printed form and
// sorting for canonical ordering.
ExprPtr BuildConjunction(const std::vector<const Expr*>& atoms) {
  std::vector<std::pair<std::string, const Expr*>> keyed;
  keyed.reserve(atoms.size());
  std::set<std::string> seen;
  for (const Expr* a : atoms) {
    std::string key = PrintExpr(*a);
    if (seen.insert(key).second) keyed.emplace_back(std::move(key), a);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  ExprPtr out;
  for (auto& [key, a] : keyed) {
    (void)key;
    ExprPtr atom = a->Clone();
    out = out ? MakeBinary(BinaryOp::kAnd, std::move(out), std::move(atom))
              : std::move(atom);
  }
  return out;
}

bool ExprHasOr(const Expr& e) {
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kOr) return true;
  for (const auto& c : e.children) {
    if (c && ExprHasOr(*c)) return true;
  }
  return false;
}

}  // namespace

namespace {

// Would the NOT-normalized form of `e` (under a pending negation `neg`)
// contain a disjunction? Works structurally so that a multi-item
// IN (?, ?) counts as disjunctive even when its items print identically
// (JDBC parameters) — Table 1 classifies the *original* query.
bool HasDisjunction(const Expr& e, bool neg) {
  switch (e.kind) {
    case ExprKind::kUnary:
      if (e.unary_op == UnaryOp::kNot) {
        return HasDisjunction(*e.children[0], !neg);
      }
      return false;
    case ExprKind::kBinary:
      if (e.binary_op == BinaryOp::kAnd) {
        // NOT (a AND b) = NOT a OR NOT b: disjunctive under negation.
        if (neg) return true;
        return HasDisjunction(*e.children[0], false) ||
               HasDisjunction(*e.children[1], false);
      }
      if (e.binary_op == BinaryOp::kOr) {
        if (!neg) return true;
        // NOT (a OR b) = NOT a AND NOT b.
        return HasDisjunction(*e.children[0], true) ||
               HasDisjunction(*e.children[1], true);
      }
      return false;  // comparisons / arithmetic: negation flips operator
    case ExprKind::kInList: {
      bool is_in = (e.negated == neg);  // effective IN vs NOT IN
      bool multi = e.children.size() > 2;
      // x IN (a, b, ...) is a disjunction; NOT IN is a conjunction of !=.
      return is_in && multi;
    }
    case ExprKind::kBetween:
      // NOT BETWEEN = (x < lo OR x > hi).
      return e.negated != neg;
    default:
      return false;
  }
}

}  // namespace

bool IsConjunctive(const Statement& stmt) {
  if (stmt.selects.size() != 1) return false;
  const SelectStmt& s = *stmt.selects[0];
  auto boolean_expr_disjunctive = [](const Expr& raw) {
    return HasDisjunction(raw, /*neg=*/false);
  };
  if (s.where && boolean_expr_disjunctive(*s.where)) return false;
  if (s.having && boolean_expr_disjunctive(*s.having)) return false;
  // Join conditions are conjuncts of the WHERE in spirit.
  std::vector<const TableRef*> stack;
  for (const auto& t : s.from) stack.push_back(t.get());
  while (!stack.empty()) {
    const TableRef* t = stack.back();
    stack.pop_back();
    if (t->kind == TableRefKind::kJoin) {
      if (t->join_condition &&
          boolean_expr_disjunctive(*t->join_condition)) {
        return false;
      }
      stack.push_back(t->left.get());
      stack.push_back(t->right.get());
    }
  }
  return true;
}

void LowercaseIdentifiers(Statement* stmt) {
  for (auto& s : stmt->selects) LowercaseSelect(s.get());
}

void AnonymizeConstants(Statement* stmt, bool keep_limit_constants) {
  for (auto& s : stmt->selects) {
    AnonymizeSelect(s.get(), keep_limit_constants);
  }
}

ExprPtr NormalizeBooleanExpr(ExprPtr e) {
  return NormalizeNeg(std::move(e), /*negate=*/false);
}

bool ExprEquals(const Expr& a, const Expr& b) {
  return PrintExpr(a) == PrintExpr(b);
}

StatementPtr Regularize(const Statement& stmt, const RegularizeOptions& opts,
                        RegularizeInfo* info) {
  StatementPtr work = stmt.Clone();
  LowercaseIdentifiers(work.get());
  if (opts.anonymize_constants) {
    AnonymizeConstants(work.get(), opts.keep_limit_constants);
  }

  auto out = std::make_unique<Statement>();
  out->union_all = work->union_all;
  bool all_rewritable = true;

  for (auto& select : work->selects) {
    if (select->where) {
      select->where = NormalizeBooleanExpr(std::move(select->where));
    }
    if (!select->where || !ExprHasOr(*select->where)) {
      // Already conjunctive (canonicalize atom order).
      if (select->where) {
        std::vector<std::vector<const Expr*>> dnf;
        bool ok = ToDnf(*select->where, opts.max_dnf_disjuncts, &dnf);
        LOGR_CHECK(ok && dnf.size() == 1);
        ExprPtr where = BuildConjunction(dnf[0]);
        select->where = std::move(where);
      }
      out->selects.push_back(select->Clone());
      continue;
    }
    std::vector<std::vector<const Expr*>> dnf;
    if (!ToDnf(*select->where, opts.max_dnf_disjuncts, &dnf)) {
      all_rewritable = false;
      out->selects.push_back(select->Clone());
      continue;
    }
    // One UNION branch per disjunct; dedupe identical branches.
    std::set<std::string> seen_branches;
    for (const auto& disjunct : dnf) {
      SelectPtr branch = select->Clone();
      branch->where = BuildConjunction(disjunct);
      std::string key = PrintSelect(*branch);
      if (seen_branches.insert(key).second) {
        out->selects.push_back(std::move(branch));
      }
    }
  }

  if (info) {
    info->rewritable = all_rewritable;
    // Conjunctive-ness is a property of the original query, judged before
    // constant removal can merge IN-list items (Table 1 semantics).
    info->conjunctive = IsConjunctive(stmt);
  }
  return out;
}

}  // namespace logr::sql
