#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "util/string_util.h"

namespace logr::sql {

namespace {

const std::unordered_set<std::string>& KeywordSet() {
  static const std::unordered_set<std::string>* kSet =
      new std::unordered_set<std::string>{
          "SELECT",   "FROM",     "WHERE",  "AND",      "OR",     "NOT",
          "AS",       "JOIN",     "INNER",  "LEFT",     "RIGHT",  "FULL",
          "OUTER",    "CROSS",    "ON",     "GROUP",    "BY",     "HAVING",
          "ORDER",    "ASC",      "DESC",   "LIMIT",    "OFFSET", "UNION",
          "ALL",      "DISTINCT", "IN",     "BETWEEN",  "LIKE",   "IS",
          "NULL",     "EXISTS",   "CASE",   "WHEN",     "THEN",   "ELSE",
          "END",      "INSERT",   "UPDATE", "DELETE",   "INTO",   "VALUES",
          "SET",      "CREATE",   "TABLE",  "INDEX",    "VIEW",   "DROP",
          "ALTER",    "EXEC",     "EXECUTE", "CALL",    "TRUE",   "FALSE",
          "CAST",     "ESCAPE",   "USING",  "NATURAL",  "GLOB",   "REGEXP",
      };
  return *kSet;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool IsReservedKeyword(std::string_view upper_word) {
  return KeywordSet().count(std::string(upper_word)) > 0;
}

std::vector<Token> Lex(std::string_view in) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = in.size();

  auto error = [&](std::size_t pos, std::string msg) {
    out.push_back({TokenType::kError, std::move(msg), pos});
  };

  while (i < n) {
    char c = in[i];
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && in[i + 1] == '-') {
      while (i < n && in[i] != '\n') ++i;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && in[i + 1] == '*') {
      std::size_t start = i;
      i += 2;
      while (i + 1 < n && !(in[i] == '*' && in[i + 1] == '/')) ++i;
      if (i + 1 >= n) {
        error(start, "unterminated block comment");
        return out;
      }
      i += 2;
      continue;
    }
    // String literal.
    if (c == '\'') {
      std::size_t start = i;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (in[i] == '\'') {
          if (i + 1 < n && in[i + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(in[i]);
        ++i;
      }
      if (!closed) {
        error(start, "unterminated string literal");
        return out;
      }
      out.push_back({TokenType::kString, std::move(text), start});
      continue;
    }
    // Quoted identifier: "name" or [name] or `name`.
    if (c == '"' || c == '[' || c == '`') {
      char close = c == '[' ? ']' : c;
      std::size_t start = i;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (in[i] == close) {
          closed = true;
          ++i;
          break;
        }
        text.push_back(in[i]);
        ++i;
      }
      if (!closed) {
        error(start, "unterminated quoted identifier");
        return out;
      }
      out.push_back({TokenType::kIdentifier, std::move(text), start});
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      std::size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(in[i]))) ++i;
      if (i < n && in[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(in[i]))) ++i;
      }
      if (i < n && (in[i] == 'e' || in[i] == 'E')) {
        std::size_t save = i;
        ++i;
        if (i < n && (in[i] == '+' || in[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(in[i]))) {
          is_float = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(in[i]))) ++i;
        } else {
          i = save;  // not an exponent, e.g. "1e" in "1end"
        }
      }
      out.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                     std::string(in.substr(start, i - start)), start});
      continue;
    }
    // Parameters.
    if (c == '?') {
      out.push_back({TokenType::kParameter, "?", i});
      ++i;
      continue;
    }
    if ((c == ':' || c == '$') && i + 1 < n && IsIdentChar(in[i + 1])) {
      std::size_t start = i;
      ++i;
      while (i < n && IsIdentChar(in[i])) ++i;
      out.push_back({TokenType::kParameter, "?", start});
      continue;
    }
    // Identifier or keyword.
    if (IsIdentStart(c)) {
      std::size_t start = i;
      while (i < n && IsIdentChar(in[i])) ++i;
      std::string word(in.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (IsReservedKeyword(upper)) {
        out.push_back({TokenType::kKeyword, std::move(upper), start});
      } else {
        out.push_back({TokenType::kIdentifier, std::move(word), start});
      }
      continue;
    }
    // Multi-char operators.
    auto two = (i + 1 < n) ? in.substr(i, 2) : std::string_view();
    if (two == "!=" || two == "<>" || two == "<=" || two == ">=" ||
        two == "||") {
      out.push_back({TokenType::kOperator,
                     two == "<>" ? "!=" : std::string(two), i});
      i += 2;
      continue;
    }
    // Single-char operators.
    static const std::string kSingle = "=<>+-*/%.,();";
    if (kSingle.find(c) != std::string::npos) {
      out.push_back({TokenType::kOperator, std::string(1, c), i});
      ++i;
      continue;
    }
    error(i, StrFormat("unexpected character '%c'", c));
    return out;
  }
  out.push_back({TokenType::kEndOfInput, "", n});
  return out;
}

}  // namespace logr::sql
