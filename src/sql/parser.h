// Recursive-descent SQL parser for SELECT / UNION statements.
//
// The parser mirrors the paper's analysis funnel: the bank log contains
// stored-procedure invocations and other non-SELECT operations that are
// classified (and counted) but not parsed into ASTs. Parse errors are
// reported via ParseResult rather than exceptions.
#ifndef LOGR_SQL_PARSER_H_
#define LOGR_SQL_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "sql/ast.h"

namespace logr::sql {

/// Coarse statement classification used by the log-loading funnel.
enum class StatementKind {
  kSelect,           // parsed successfully into `statement`
  kInsert,
  kUpdate,
  kDelete,
  kDdl,              // CREATE / DROP / ALTER
  kProcedureCall,    // EXEC / EXECUTE / CALL
  kOther,            // recognized lexically but not a supported statement
  kParseError,       // lexical or syntactic error
};

struct ParseResult {
  StatementKind kind = StatementKind::kParseError;
  StatementPtr statement;     // non-null iff kind == kSelect
  std::string error;          // non-empty iff kind == kParseError
  std::size_t error_position = 0;

  bool ok() const { return kind == StatementKind::kSelect; }
};

/// Parses one SQL statement (trailing semicolon permitted).
ParseResult Parse(std::string_view sql);

}  // namespace logr::sql

#endif  // LOGR_SQL_PARSER_H_
