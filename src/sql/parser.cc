#include "sql/parser.h"

#include <utility>

#include "sql/lexer.h"
#include "util/string_util.h"

namespace logr::sql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ParseResult ParseStatement() {
    ParseResult result;
    if (Check(TokenType::kError)) {
      return Fail(Peek().text);
    }
    if (Check(TokenType::kEndOfInput)) {
      return Fail("empty statement");
    }
    // Classify non-SELECT statements without full parsing.
    if (Peek().type == TokenType::kKeyword) {
      const std::string& kw = Peek().text;
      StatementKind kind = StatementKind::kOther;
      if (kw == "INSERT") kind = StatementKind::kInsert;
      else if (kw == "UPDATE") kind = StatementKind::kUpdate;
      else if (kw == "DELETE") kind = StatementKind::kDelete;
      else if (kw == "CREATE" || kw == "DROP" || kw == "ALTER")
        kind = StatementKind::kDdl;
      else if (kw == "EXEC" || kw == "EXECUTE" || kw == "CALL")
        kind = StatementKind::kProcedureCall;
      if (kind != StatementKind::kOther) {
        result.kind = kind;
        return result;
      }
    }
    if (!Peek().IsKeyword("SELECT") && !Peek().IsOperator("(")) {
      return Fail("expected SELECT");
    }

    auto stmt = std::make_unique<Statement>();
    SelectPtr first = ParseSelectBlock();
    if (!first) return Fail(error_);
    stmt->selects.push_back(std::move(first));
    while (Peek().IsKeyword("UNION")) {
      Advance();
      if (Peek().IsKeyword("ALL")) {
        stmt->union_all = true;
        Advance();
      }
      SelectPtr next = ParseSelectBlock();
      if (!next) return Fail(error_);
      stmt->selects.push_back(std::move(next));
    }
    if (Peek().IsOperator(";")) Advance();
    if (!Check(TokenType::kEndOfInput)) {
      return Fail(StrFormat("unexpected trailing token '%s'",
                            Peek().text.c_str()));
    }
    result.kind = StatementKind::kSelect;
    result.statement = std::move(stmt);
    return result;
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    if (i >= tokens_.size()) return tokens_.back();
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_ >= tokens_.size() ? tokens_.size() - 1 : pos_++]; }
  bool Check(TokenType t) const { return Peek().type == t; }

  bool Accept(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptOp(std::string_view op) {
    if (Peek().IsOperator(op)) {
      Advance();
      return true;
    }
    return false;
  }
  bool Expect(std::string_view kw) {
    if (Accept(kw)) return true;
    SetError(StrFormat("expected %s, found '%s'", std::string(kw).c_str(),
                       Peek().text.c_str()));
    return false;
  }
  bool ExpectOp(std::string_view op) {
    if (AcceptOp(op)) return true;
    SetError(StrFormat("expected '%s', found '%s'", std::string(op).c_str(),
                       Peek().text.c_str()));
    return false;
  }

  void SetError(std::string msg) {
    if (error_.empty()) {
      error_ = std::move(msg);
      error_pos_ = Peek().position;
    }
  }

  ParseResult Fail(std::string msg) {
    ParseResult r;
    r.kind = StatementKind::kParseError;
    r.error = msg.empty() ? "parse error" : std::move(msg);
    r.error_position = error_pos_ ? error_pos_ : Peek().position;
    return r;
  }

  // --- SELECT ---------------------------------------------------------

  SelectPtr ParseSelectBlock() {
    // Parenthesized select block: ( SELECT ... )
    if (Peek().IsOperator("(") && Peek(1).IsKeyword("SELECT")) {
      Advance();
      SelectPtr inner = ParseSelectBlock();
      if (!inner) return nullptr;
      if (!ExpectOp(")")) return nullptr;
      return inner;
    }
    if (!Expect("SELECT")) return nullptr;
    auto select = std::make_unique<SelectStmt>();
    if (Accept("DISTINCT")) {
      select->distinct = true;
    } else {
      Accept("ALL");
    }
    // Select list.
    do {
      SelectItem item;
      item.expr = ParseExpr();
      if (!item.expr) return nullptr;
      if (Accept("AS")) {
        if (!Check(TokenType::kIdentifier)) {
          SetError("expected alias after AS");
          return nullptr;
        }
        item.alias = Advance().text;
      } else if (Check(TokenType::kIdentifier)) {
        item.alias = Advance().text;
      }
      select->items.push_back(std::move(item));
    } while (AcceptOp(","));

    if (Accept("FROM")) {
      do {
        TableRefPtr t = ParseTableRef();
        if (!t) return nullptr;
        select->from.push_back(std::move(t));
      } while (AcceptOp(","));
    }
    if (Accept("WHERE")) {
      select->where = ParseExpr();
      if (!select->where) return nullptr;
    }
    if (Peek().IsKeyword("GROUP")) {
      Advance();
      if (!Expect("BY")) return nullptr;
      do {
        ExprPtr g = ParseExpr();
        if (!g) return nullptr;
        select->group_by.push_back(std::move(g));
      } while (AcceptOp(","));
    }
    if (Accept("HAVING")) {
      select->having = ParseExpr();
      if (!select->having) return nullptr;
    }
    if (Peek().IsKeyword("ORDER")) {
      Advance();
      if (!Expect("BY")) return nullptr;
      do {
        OrderItem o;
        o.expr = ParseExpr();
        if (!o.expr) return nullptr;
        if (Accept("DESC")) {
          o.ascending = false;
        } else {
          Accept("ASC");
        }
        select->order_by.push_back(std::move(o));
      } while (AcceptOp(","));
    }
    if (Accept("LIMIT")) {
      select->limit = ParseExpr();
      if (!select->limit) return nullptr;
      if (Accept("OFFSET")) {
        select->offset = ParseExpr();
        if (!select->offset) return nullptr;
      } else if (AcceptOp(",")) {  // LIMIT offset, count (MySQL form)
        select->offset = std::move(select->limit);
        select->limit = ParseExpr();
        if (!select->limit) return nullptr;
      }
    }
    return select;
  }

  // --- Table references -------------------------------------------------

  TableRefPtr ParseTableRef() {
    TableRefPtr left = ParseTablePrimary();
    if (!left) return nullptr;
    for (;;) {
      JoinType jt;
      bool is_join = false;
      if (Peek().IsKeyword("JOIN")) {
        jt = JoinType::kInner;
        is_join = true;
        Advance();
      } else if (Peek().IsKeyword("INNER") && Peek(1).IsKeyword("JOIN")) {
        jt = JoinType::kInner;
        is_join = true;
        Advance();
        Advance();
      } else if (Peek().IsKeyword("CROSS") && Peek(1).IsKeyword("JOIN")) {
        jt = JoinType::kCross;
        is_join = true;
        Advance();
        Advance();
      } else if (Peek().IsKeyword("LEFT") || Peek().IsKeyword("RIGHT") ||
                 Peek().IsKeyword("FULL")) {
        const std::string& d = Peek().text;
        jt = d == "LEFT" ? JoinType::kLeft
                         : (d == "RIGHT" ? JoinType::kRight : JoinType::kFull);
        std::size_t ahead = 1;
        if (Peek(1).IsKeyword("OUTER")) ahead = 2;
        if (!Peek(ahead).IsKeyword("JOIN")) break;
        is_join = true;
        for (std::size_t i = 0; i <= ahead; ++i) Advance();
      }
      if (!is_join) break;

      TableRefPtr right = ParseTablePrimary();
      if (!right) return nullptr;
      auto join = std::make_unique<TableRef>();
      join->kind = TableRefKind::kJoin;
      join->join_type = jt;
      join->left = std::move(left);
      join->right = std::move(right);
      if (Accept("ON")) {
        join->join_condition = ParseExpr();
        if (!join->join_condition) return nullptr;
      }
      left = std::move(join);
    }
    return left;
  }

  TableRefPtr ParseTablePrimary() {
    auto t = std::make_unique<TableRef>();
    if (Peek().IsOperator("(")) {
      if (Peek(1).IsKeyword("SELECT")) {
        Advance();
        t->kind = TableRefKind::kDerived;
        t->derived = ParseSelectBlock();
        if (!t->derived) return nullptr;
        if (!ExpectOp(")")) return nullptr;
      } else {
        // Parenthesized join tree.
        Advance();
        TableRefPtr inner = ParseTableRef();
        if (!inner) return nullptr;
        if (!ExpectOp(")")) return nullptr;
        return inner;
      }
    } else if (Check(TokenType::kIdentifier)) {
      t->kind = TableRefKind::kBaseTable;
      t->table_name = Advance().text;
      // Dotted schema names: schema.table
      while (Peek().IsOperator(".") && Peek(1).type == TokenType::kIdentifier) {
        Advance();
        t->table_name += "." + Advance().text;
      }
    } else {
      SetError(StrFormat("expected table reference, found '%s'",
                         Peek().text.c_str()));
      return nullptr;
    }
    if (Accept("AS")) {
      if (!Check(TokenType::kIdentifier)) {
        SetError("expected alias after AS");
        return nullptr;
      }
      t->alias = Advance().text;
    } else if (Check(TokenType::kIdentifier)) {
      t->alias = Advance().text;
    }
    return t;
  }

  // --- Expressions --------------------------------------------------------
  // Grammar (low -> high precedence):
  //   or_expr    := and_expr (OR and_expr)*
  //   and_expr   := not_expr (AND not_expr)*
  //   not_expr   := NOT not_expr | predicate
  //   predicate  := concat ((= != < <= > >=) concat
  //                 | [NOT] IN (...) | [NOT] BETWEEN a AND b
  //                 | [NOT] LIKE p | IS [NOT] NULL)?
  //   concat     := additive (|| additive)*
  //   additive   := multiplicative ((+ -) multiplicative)*
  //   multiplicative := unary ((* / %) unary)*
  //   unary      := (- +) unary | primary
  ExprPtr ParseExpr() { return ParseOr(); }

  ExprPtr ParseOr() {
    ExprPtr lhs = ParseAnd();
    if (!lhs) return nullptr;
    while (Peek().IsKeyword("OR")) {
      Advance();
      ExprPtr rhs = ParseAnd();
      if (!rhs) return nullptr;
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr ParseAnd() {
    ExprPtr lhs = ParseNot();
    if (!lhs) return nullptr;
    while (Peek().IsKeyword("AND")) {
      Advance();
      ExprPtr rhs = ParseNot();
      if (!rhs) return nullptr;
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr ParseNot() {
    if (Accept("NOT")) {
      ExprPtr operand = ParseNot();
      if (!operand) return nullptr;
      return MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParsePredicate();
  }

  ExprPtr ParsePredicate() {
    ExprPtr lhs = ParseConcat();
    if (!lhs) return nullptr;

    // Comparison operators.
    static const std::pair<const char*, BinaryOp> kCmps[] = {
        {"=", BinaryOp::kEq},  {"!=", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
    };
    for (const auto& [op, bop] : kCmps) {
      if (Peek().IsOperator(op)) {
        Advance();
        ExprPtr rhs = ParseConcat();
        if (!rhs) return nullptr;
        return MakeBinary(bop, std::move(lhs), std::move(rhs));
      }
    }

    bool negated = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("BETWEEN") ||
         Peek(1).IsKeyword("LIKE") || Peek(1).IsKeyword("GLOB") ||
         Peek(1).IsKeyword("REGEXP"))) {
      negated = true;
      Advance();
    }

    if (Accept("IN")) {
      if (!ExpectOp("(")) return nullptr;
      if (Peek().IsKeyword("SELECT")) {
        auto e = std::make_unique<Expr>(ExprKind::kInSubquery);
        e->negated = negated;
        e->children.push_back(std::move(lhs));
        e->subquery = ParseSelectBlock();
        if (!e->subquery) return nullptr;
        if (!ExpectOp(")")) return nullptr;
        return e;
      }
      auto e = std::make_unique<Expr>(ExprKind::kInList);
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      do {
        ExprPtr item = ParseExpr();
        if (!item) return nullptr;
        e->children.push_back(std::move(item));
      } while (AcceptOp(","));
      if (!ExpectOp(")")) return nullptr;
      return e;
    }
    if (Accept("BETWEEN")) {
      auto e = std::make_unique<Expr>(ExprKind::kBetween);
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      ExprPtr lo = ParseConcat();
      if (!lo) return nullptr;
      e->children.push_back(std::move(lo));
      if (!Expect("AND")) return nullptr;
      ExprPtr hi = ParseConcat();
      if (!hi) return nullptr;
      e->children.push_back(std::move(hi));
      return e;
    }
    if (Peek().IsKeyword("LIKE") || Peek().IsKeyword("GLOB") ||
        Peek().IsKeyword("REGEXP")) {
      Advance();
      auto e = std::make_unique<Expr>(ExprKind::kLike);
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      ExprPtr pattern = ParseConcat();
      if (!pattern) return nullptr;
      e->children.push_back(std::move(pattern));
      if (Accept("ESCAPE")) {
        ExprPtr esc = ParseConcat();
        if (!esc) return nullptr;
        e->children.push_back(std::move(esc));
      }
      return e;
    }
    if (Accept("IS")) {
      bool is_not = Accept("NOT");
      if (!Expect("NULL")) return nullptr;
      auto e = std::make_unique<Expr>(ExprKind::kIsNull);
      e->negated = is_not;
      e->children.push_back(std::move(lhs));
      return e;
    }
    return lhs;
  }

  ExprPtr ParseConcat() {
    ExprPtr lhs = ParseAdditive();
    if (!lhs) return nullptr;
    while (Peek().IsOperator("||")) {
      Advance();
      ExprPtr rhs = ParseAdditive();
      if (!rhs) return nullptr;
      lhs = MakeBinary(BinaryOp::kConcat, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr ParseAdditive() {
    ExprPtr lhs = ParseMultiplicative();
    if (!lhs) return nullptr;
    for (;;) {
      BinaryOp op;
      if (Peek().IsOperator("+")) op = BinaryOp::kAdd;
      else if (Peek().IsOperator("-")) op = BinaryOp::kSub;
      else break;
      Advance();
      ExprPtr rhs = ParseMultiplicative();
      if (!rhs) return nullptr;
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr lhs = ParseUnary();
    if (!lhs) return nullptr;
    for (;;) {
      BinaryOp op;
      if (Peek().IsOperator("*")) op = BinaryOp::kMul;
      else if (Peek().IsOperator("/")) op = BinaryOp::kDiv;
      else if (Peek().IsOperator("%")) op = BinaryOp::kMod;
      else break;
      Advance();
      ExprPtr rhs = ParseUnary();
      if (!rhs) return nullptr;
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr ParseUnary() {
    if (Peek().IsOperator("-")) {
      Advance();
      ExprPtr operand = ParseUnary();
      if (!operand) return nullptr;
      return MakeUnary(UnaryOp::kNeg, std::move(operand));
    }
    if (Peek().IsOperator("+")) {
      Advance();
      ExprPtr operand = ParseUnary();
      if (!operand) return nullptr;
      return MakeUnary(UnaryOp::kPlus, std::move(operand));
    }
    return ParsePrimary();
  }

  ExprPtr ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger: {
        auto e = std::make_unique<Expr>(ExprKind::kLiteral);
        e->literal_kind = LiteralKind::kInteger;
        e->literal_text = Advance().text;
        return e;
      }
      case TokenType::kFloat: {
        auto e = std::make_unique<Expr>(ExprKind::kLiteral);
        e->literal_kind = LiteralKind::kFloat;
        e->literal_text = Advance().text;
        return e;
      }
      case TokenType::kString: {
        auto e = std::make_unique<Expr>(ExprKind::kLiteral);
        e->literal_kind = LiteralKind::kString;
        e->literal_text = Advance().text;
        return e;
      }
      case TokenType::kParameter:
        Advance();
        return MakeParameter();
      case TokenType::kKeyword: {
        if (t.text == "NULL") {
          Advance();
          return MakeNullLiteral();
        }
        if (t.text == "TRUE" || t.text == "FALSE") {
          auto e = std::make_unique<Expr>(ExprKind::kLiteral);
          e->literal_kind = LiteralKind::kBool;
          e->bool_value = (t.text == "TRUE");
          e->literal_text = t.text;
          Advance();
          return e;
        }
        if (t.text == "CASE") return ParseCase();
        if (t.text == "EXISTS") {
          Advance();
          if (!ExpectOp("(")) return nullptr;
          auto e = std::make_unique<Expr>(ExprKind::kExists);
          e->subquery = ParseSelectBlock();
          if (!e->subquery) return nullptr;
          if (!ExpectOp(")")) return nullptr;
          return e;
        }
        if (t.text == "CAST") {
          Advance();
          if (!ExpectOp("(")) return nullptr;
          auto e = std::make_unique<Expr>(ExprKind::kFunction);
          e->column = "CAST";
          ExprPtr inner = ParseExpr();
          if (!inner) return nullptr;
          e->children.push_back(std::move(inner));
          if (!Expect("AS")) return nullptr;
          // Type name: one identifier/keyword plus optional (n[,m]).
          if (Check(TokenType::kIdentifier) || Check(TokenType::kKeyword)) {
            e->table = Advance().text;  // store type name in `table`
          } else {
            SetError("expected type name in CAST");
            return nullptr;
          }
          if (AcceptOp("(")) {
            while (!Peek().IsOperator(")") &&
                   !Check(TokenType::kEndOfInput)) {
              Advance();
            }
            if (!ExpectOp(")")) return nullptr;
          }
          if (!ExpectOp(")")) return nullptr;
          return e;
        }
        SetError(StrFormat("unexpected keyword '%s'", t.text.c_str()));
        return nullptr;
      }
      case TokenType::kOperator: {
        if (t.text == "(") {
          Advance();
          if (Peek().IsKeyword("SELECT")) {
            auto e = std::make_unique<Expr>(ExprKind::kSubquery);
            e->subquery = ParseSelectBlock();
            if (!e->subquery) return nullptr;
            if (!ExpectOp(")")) return nullptr;
            return e;
          }
          ExprPtr inner = ParseExpr();
          if (!inner) return nullptr;
          if (!ExpectOp(")")) return nullptr;
          return inner;
        }
        if (t.text == "*") {
          Advance();
          return MakeStar();
        }
        SetError(StrFormat("unexpected token '%s'", t.text.c_str()));
        return nullptr;
      }
      case TokenType::kIdentifier: {
        std::string first = Advance().text;
        // Function call?
        if (Peek().IsOperator("(")) {
          return ParseFunctionCall(std::move(first));
        }
        // Qualified reference: a.b or a.*
        if (Peek().IsOperator(".")) {
          Advance();
          if (Peek().IsOperator("*")) {
            Advance();
            auto e = std::make_unique<Expr>(ExprKind::kStar);
            e->table = std::move(first);
            return e;
          }
          if (Check(TokenType::kIdentifier) ||
              Check(TokenType::kKeyword)) {
            std::string col = Advance().text;
            if (Peek().IsOperator("(")) {
              // schema-qualified function, e.g. upper(name)
              return ParseFunctionCall(first + "." + col);
            }
            return MakeColumnRef(std::move(first), std::move(col));
          }
          SetError("expected column after '.'");
          return nullptr;
        }
        return MakeColumnRef("", std::move(first));
      }
      default:
        SetError(StrFormat("unexpected token '%s'", t.text.c_str()));
        return nullptr;
    }
  }

  ExprPtr ParseCase() {
    // Consume CASE.
    Accept("CASE");
    auto e = std::make_unique<Expr>(ExprKind::kCase);
    if (!Peek().IsKeyword("WHEN")) {
      e->has_case_operand = true;
      ExprPtr operand = ParseExpr();
      if (!operand) return nullptr;
      e->children.push_back(std::move(operand));
    }
    while (Accept("WHEN")) {
      ExprPtr cond = ParseExpr();
      if (!cond) return nullptr;
      if (!Expect("THEN")) return nullptr;
      ExprPtr value = ParseExpr();
      if (!value) return nullptr;
      e->children.push_back(std::move(cond));
      e->children.push_back(std::move(value));
      ++e->n_when;
    }
    if (e->n_when == 0) {
      SetError("CASE requires at least one WHEN branch");
      return nullptr;
    }
    if (Accept("ELSE")) {
      e->has_else = true;
      ExprPtr value = ParseExpr();
      if (!value) return nullptr;
      e->children.push_back(std::move(value));
    }
    if (!Expect("END")) return nullptr;
    return e;
  }

  ExprPtr ParseFunctionCall(std::string name) {
    // Consume '('.
    AcceptOp("(");
    auto e = std::make_unique<Expr>(ExprKind::kFunction);
    e->column = std::move(name);
    if (Accept("DISTINCT")) e->distinct_arg = true;
    if (!Peek().IsOperator(")")) {
      do {
        ExprPtr arg = ParseExpr();
        if (!arg) return nullptr;
        e->children.push_back(std::move(arg));
      } while (AcceptOp(","));
    }
    if (!ExpectOp(")")) return nullptr;
    return e;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::string error_;
  std::size_t error_pos_ = 0;
};

}  // namespace

ParseResult Parse(std::string_view sql) {
  return Parser(Lex(sql)).ParseStatement();
}

}  // namespace logr::sql
