// logr_cli — command-line front end for the LogR library.
//
//   logr_cli compress [--clusters K] [--method NAME] [--encoder NAME]
//                     [--refine-patterns N] [--shards S]
//                     [--shard-policy hash|range] [--out FILE] [LOG]
//       Reads SQL statements (one per line; an optional "COUNT<TAB>"
//       prefix gives a multiplicity) from LOG or stdin, compresses them,
//       and writes a summary file. --encoder picks the summarizer:
//       naive (default), refined (naive + corr_rank patterns, Sec. 6.4;
//       --refine-patterns caps the per-cluster budget), pattern
//       (per-cluster max-ent pattern encodings, Sec. 2.3.1; in-memory
//       only), or any encoder registered in EncoderRegistry.
//       --shards S > 1 compresses shard-wise in parallel and merges the
//       per-shard mixtures (bit-deterministic for any thread count;
//       mergeable encoders only). --refine N is a deprecated alias for
//       --encoder refined --refine-patterns N.
//       LOG may also be a binary .logrl file written by `convert` (or
//       LogLoader::WriteBinary): it is detected by magic, mmap-loaded,
//       and compressed without re-parsing any SQL.
//   logr_cli convert [--name NAME] [--out FILE.logrl] [LOG]
//       Reads a text SQL log (same line format as compress) and writes
//       the logr-log v1 binary columnar file (feature-id columns +
//       vocabulary + Table-1 stats; see workload/binary_log.h). The
//       default output is LOG.logrl.
//   logr_cli split [--shards N] [--shard-policy hash|range]
//                  [--out-dir DIR] [--name NAME] [LOG|LOG.logrl]
//       Partitions a log's distinct templates into N binary .logrl
//       shard files (same stable policies as compress --shards), ready
//       for `distribute` or for per-node compression. Empty shards are
//       dropped, so fewer than N files can appear.
//   logr_cli distribute [--workers W] [--clusters K] [--method NAME]
//                       [--spool DIR] [--retries R] [--timeout SEC]
//                       [--no-resume] [--no-fallback] [--out FILE]
//                       SHARD.logrl...|SHARD_DIR
//       Scatter/gather compression over worker processes: each .logrl
//       shard (listed explicitly or enumerated from a directory) is
//       compressed by a separate worker process that mmap-reads it
//       zero-copy and spools a summary into --spool; the coordinator
//       retries crashed or hung workers (--retries per shard, --timeout
//       watchdog), reuses valid spooled summaries on re-run (resume),
//       and merges everything into one summary — bit-identical to
//       `compress --shards` over the same split. The output is always
//       a naive summary, like `merge`.
//   logr_cli merge [--clusters K] [--out FILE] SUMMARY...
//       Merges summary files written by compress (e.g. one per day or
//       per shard) into one, reconciling down to K clusters by
//       nearest-centroid-chain agglomeration when the pooled components
//       exceed K ("compress each day, merge the week"). Only mergeable
//       summaries (naive, refined) pool; the output is always a naive
//       summary. --method is a deprecated no-op (merge never
//       re-clusters with a backend); --encoder is removed — the flag
//       never affected the output, so asking for anything but "naive"
//       (tolerated with a warning) is now a loud error instead of a
//       silent lie.
//   logr_cli info SUMMARY
//       Prints the summary's encoder, clusters, weights and verbosities.
//   logr_cli estimate SUMMARY TERM [TERM ...]
//       Estimates how many logged queries contain all the given
//       features. A TERM is CLAUSE:TEXT (e.g. "WHERE:status = ?") or a
//       numeric feature id from the codebook ("#7" or "7"); arguments
//       may also be comma-separated lists ("0,2"). Malformed terms are
//       rejected loudly and the set is deduplicated, exactly like the
//       serve protocol (both parse via workload/predicate.h).
//   logr_cli query [--timeout MS] [--retries N] ENDPOINT REQUEST...
//       Sends one request line to a running logr_serve daemon and
//       prints the response, e.g.
//         logr_cli query tcp:127.0.0.1:7979 estimate prod FROM:orders
//       --timeout bounds the connect and the request round-trip;
//       --retries retries (with exponential backoff + jitter) only
//       connect failures and "err busy" shed replies — a request that
//       was delivered is never re-sent. Exit status is 0 for an "ok"
//       response, 1 otherwise.
//   logr_cli visualize SUMMARY
//       Renders each cluster as a shaded SQL template (Fig. 10 style).
//   logr_cli demo
//       Compresses a built-in synthetic workload end to end.
//
// Methods: kmeans (default), manhattan, minkowski, hamming, hierarchical,
// adaptive, or any backend name registered in ClustererRegistry.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/distributed.h"
#include "core/encoder.h"
#include "core/logr_compressor.h"
#include "core/serialization.h"
#include "core/sharded.h"
#include "core/visualize.h"
#include "data/pocketdata.h"
#include "data/sql_log.h"
#include "serve/client.h"
#include "util/subprocess.h"
#include "workload/binary_log.h"
#include "workload/loader.h"
#include "workload/predicate.h"

namespace {

using namespace logr;

int Usage() {
  std::fprintf(stderr,
               "usage: logr_cli compress [--clusters K] [--method NAME] "
               "[--encoder NAME] [--refine-patterns N] [--shards S] "
               "[--shard-policy hash|range] [--out FILE] [LOG|LOG.logrl]\n"
               "       logr_cli convert [--name NAME] [--out FILE.logrl] "
               "[LOG]\n"
               "       logr_cli split [--shards N] "
               "[--shard-policy hash|range] [--out-dir DIR] [--name NAME] "
               "[LOG|LOG.logrl]\n"
               "       logr_cli distribute [--workers W] [--clusters K] "
               "[--method NAME] [--spool DIR] [--retries R] "
               "[--timeout SEC] [--no-resume] [--no-fallback] "
               "[--out FILE] SHARD.logrl...|SHARD_DIR\n"
               "       logr_cli merge [--clusters K] [--out FILE] "
               "SUMMARY...\n"
               "       logr_cli info SUMMARY\n"
               "       logr_cli estimate SUMMARY TERM...\n"
               "       logr_cli query [--timeout MS] [--retries N] "
               "ENDPOINT REQUEST...\n"
               "       logr_cli visualize SUMMARY\n"
               "       logr_cli demo\n");
  return 2;
}

// Strict non-negative integer parse: rejects trailing garbage ("8x"),
// non-numbers ("five"), which atoll would silently read as 0, and
// out-of-range values, which strtoll would silently clamp to LLONG_MAX.
bool ParseCount(const char* text, long long min_value, long long* out) {
  char* end = nullptr;
  errno = 0;
  long long parsed = std::strtoll(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0' ||
      parsed < min_value) {
    return false;
  }
  *out = parsed;
  return true;
}

/// Feeds a text log (one statement per line, optional "COUNT<TAB>"
/// prefix; an explicit count of 0 skips the line) through `loader`.
/// Returns the number of non-empty lines read.
std::uint64_t ReadTextLog(std::istream& in, LogLoader* loader) {
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::uint64_t count = 1;
    std::string sql_text = line;
    std::size_t tab = line.find('\t');
    if (tab != std::string::npos) {
      long long parsed;
      if (ParseCount(line.substr(0, tab).c_str(), 0, &parsed)) {
        count = static_cast<std::uint64_t>(parsed);
        sql_text = line.substr(tab + 1);
      }
    }
    loader->AddSql(sql_text, count);
    ++lines;
  }
  return lines;
}

void PrintFunnel(std::uint64_t lines, const DatasetSummary& stats) {
  std::printf("read %llu lines: %llu SELECT queries, %llu non-SELECT, "
              "%llu unparseable\n",
              static_cast<unsigned long long>(lines),
              static_cast<unsigned long long>(stats.num_queries),
              static_cast<unsigned long long>(stats.num_non_select),
              static_cast<unsigned long long>(stats.num_parse_errors));
}

/// Resolves --encoder, printing the registered names on failure.
const Encoder* ResolveEncoderArg(const std::string& name) {
  const Encoder* encoder = EncoderRegistry::Instance().Find(name);
  if (encoder == nullptr) {
    std::fprintf(stderr, "unknown encoder %s; registered encoders:\n",
                 name.c_str());
    for (const std::string& n : EncoderRegistry::Instance().Names()) {
      std::fprintf(stderr, "  %s\n", n.c_str());
    }
  }
  return encoder;
}

int RunCompress(int argc, char** argv) {
  std::size_t clusters = 8;
  std::size_t refine = 0;
  std::size_t shards = 1;
  ShardPolicy shard_policy = ShardPolicy::kHashDistinct;
  std::string method = "kmeans";
  std::string encoder_name;  // empty = LOGR_ENCODER env, else "naive"
  std::string out_path = "summary.logr";
  std::string in_path;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--clusters" && i + 1 < argc) {
      long long parsed;
      if (!ParseCount(argv[++i], 1, &parsed)) {
        std::fprintf(stderr, "--clusters must be an integer >= 1\n");
        return 2;
      }
      clusters = static_cast<std::size_t>(parsed);
    } else if (arg == "--method" && i + 1 < argc) {
      method = argv[++i];
    } else if (arg == "--encoder" && i + 1 < argc) {
      encoder_name = argv[++i];
    } else if ((arg == "--refine-patterns" || arg == "--refine") &&
               i + 1 < argc) {
      long long parsed;
      if (!ParseCount(argv[++i], 0, &parsed)) {
        std::fprintf(stderr, "%s must be an integer >= 0\n", arg.c_str());
        return 2;
      }
      refine = static_cast<std::size_t>(parsed);
      if (arg == "--refine") {
        std::fprintf(stderr,
                     "warning: --refine N is deprecated; use "
                     "--encoder refined --refine-patterns N\n");
        if (encoder_name.empty() && refine > 0) encoder_name = "refined";
      }
    } else if (arg == "--shards" && i + 1 < argc) {
      long long parsed;
      if (!ParseCount(argv[++i], 1, &parsed)) {
        std::fprintf(stderr, "--shards must be an integer >= 1\n");
        return 2;
      }
      shards = static_cast<std::size_t>(parsed);
    } else if (arg == "--shard-policy" && i + 1 < argc) {
      if (!ParseShardPolicy(argv[++i], &shard_policy)) {
        std::fprintf(stderr, "--shard-policy must be hash or range\n");
        return 2;
      }
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      in_path = arg;
    } else {
      return Usage();
    }
  }

  LogROptions opts;
  opts.num_clusters = clusters;
  opts.encoder = encoder_name;
  opts.refine_patterns = refine;
  opts.num_shards = shards;
  opts.shard_policy = shard_policy;
  const Encoder* encoder = ResolveEncoderArg(EffectiveEncoderName(opts));
  if (encoder == nullptr) return 2;
  if (shards > 1 && !encoder->Mergeable()) {
    std::fprintf(stderr,
                 "--shards requires a mergeable encoder (naive, refined); "
                 "%s summaries cannot be pooled\n",
                 encoder->Name());
    return 2;
  }

  // One of `log` / `binary` backs `view`; both outlive the compression.
  QueryLog log;
  MmapQueryLog binary;
  LogView view;
  if (!in_path.empty() && IsBinaryLogFile(in_path)) {
    // Binary fast path: mmap the columns, skip the SQL parse stage, and
    // compress straight off the mapping — no Materialize() copy.
    std::string bin_error;
    if (!MmapQueryLog::Open(in_path, &binary, &bin_error)) {
      std::fprintf(stderr, "%s\n", bin_error.c_str());
      return 1;
    }
    const DatasetSummary& stats = binary.summary();
    std::printf("loaded binary log %s (%s): %llu SELECT queries, %zu "
                "distinct templates, %zu features\n",
                in_path.c_str(), binary.mapped() ? "mmap" : "eager",
                static_cast<unsigned long long>(binary.TotalQueries()),
                binary.NumDistinct(), binary.NumFeatures());
    std::printf("stored funnel: %llu SELECT queries, %llu non-SELECT, "
                "%llu unparseable\n",
                static_cast<unsigned long long>(stats.num_queries),
                static_cast<unsigned long long>(stats.num_non_select),
                static_cast<unsigned long long>(stats.num_parse_errors));
    view = LogView(binary);
  } else {
    std::ifstream file;
    std::istream* in = &std::cin;
    if (!in_path.empty()) {
      file.open(in_path);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", in_path.c_str());
        return 1;
      }
      in = &file;
    }
    LogLoader loader;
    std::uint64_t lines = ReadTextLog(*in, &loader);
    PrintFunnel(lines, loader.Summary("cli"));
    log = loader.TakeLog();
    view = LogView(log);
  }
  if (view.TotalQueries() == 0) {
    std::fprintf(stderr, "no usable queries\n");
    return 1;
  }
  LogRSummary summary;
  if (method == "adaptive") {
    if (shards > 1) {
      std::fprintf(stderr, "--shards does not combine with adaptive yet\n");
      return 2;
    }
    summary = CompressAdaptive(view, clusters, opts);
  } else {
    if (!ParseClusteringMethod(method, &opts.method)) {
      // Not a built-in method name; accept any registered backend.
      if (ClustererRegistry::Instance().Find(method) == nullptr) {
        std::fprintf(stderr, "unknown method %s; registered backends:\n",
                     method.c_str());
        for (const std::string& name :
             ClustererRegistry::Instance().Names()) {
          std::fprintf(stderr, "  %s\n", name.c_str());
        }
        return 2;
      }
      opts.backend = method;
    }
    summary = Compress(view, opts);
  }
  const WorkloadModel& model = summary.Model();
  std::printf("compressed [%s]: %zu clusters, error %.4f nats, verbosity "
              "%zu (from %zu distinct templates, %zu features)\n",
              model.EncoderName(), model.NumComponents(), model.Error(),
              model.TotalVerbosity(), view.NumDistinct(), view.NumFeatures());
  if (model.Error() != model.BaseError()) {
    std::size_t extra = 0;
    for (std::size_t c = 0; c < model.NumComponents(); ++c) {
      extra += model.ComponentPatterns(c).size();
    }
    std::printf("refined: error %.4f nats (naive %.4f) with %zu extra "
                "patterns\n",
                model.Error(), model.BaseError(), extra);
  }

  std::string error;
  if (!WriteSummaryFile(out_path, view.vocabulary(), model, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

int RunConvert(int argc, char** argv) {
  std::string out_path;
  std::string in_path;
  std::string name = "cli";
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--name" && i + 1 < argc) {
      name = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      in_path = arg;
    } else {
      return Usage();
    }
  }
  if (!in_path.empty() && IsBinaryLogFile(in_path)) {
    std::fprintf(stderr, "%s is already a binary log\n", in_path.c_str());
    return 2;
  }
  if (out_path.empty()) {
    out_path = in_path.empty() ? "log.logrl" : in_path + ".logrl";
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (!in_path.empty()) {
    file.open(in_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", in_path.c_str());
      return 1;
    }
    in = &file;
  }
  LogLoader loader;
  std::uint64_t lines = ReadTextLog(*in, &loader);
  DatasetSummary stats = loader.Summary(name);
  PrintFunnel(lines, stats);
  std::string error;
  if (!loader.WriteBinary(out_path, name, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu distinct templates, %zu features) — feed it "
              "back to `logr_cli compress` to skip the parse stage\n",
              out_path.c_str(), loader.log().NumDistinct(),
              loader.log().NumFeatures());
  return 0;
}

int RunMerge(int argc, char** argv) {
  std::size_t clusters = 0;  // 0 = keep every pooled component
  std::string out_path = "merged.logr";
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--clusters" && i + 1 < argc) {
      long long parsed;
      if (!ParseCount(argv[++i], 1, &parsed)) {
        std::fprintf(stderr, "--clusters must be an integer >= 1\n");
        return 2;
      }
      clusters = static_cast<std::size_t>(parsed);
    } else if (arg == "--method" && i + 1 < argc) {
      // Deprecated: reconcile is nearest-centroid-chain agglomeration
      // now and no longer consults a clustering backend.
      std::fprintf(stderr,
                   "warning: merge --method is deprecated and ignored "
                   "(reconcile no longer uses a clustering backend)\n");
      ++i;
    } else if (arg == "--encoder" && i + 1 < argc) {
      // Deprecated: the flag never had an effect (merge always emits a
      // naive summary — patterns are log-dependent and cannot be
      // re-ranked offline). Reject non-naive requests loudly instead of
      // silently writing something else than asked.
      const std::string requested = argv[++i];
      if (requested != "naive") {
        std::fprintf(stderr,
                     "merge --encoder is removed: merged summaries are "
                     "always naive (re-ranking '%s' patterns needs the "
                     "original logs; re-compress with --encoder "
                     "instead)\n",
                     requested.c_str());
        return 2;
      }
      std::fprintf(stderr,
                   "warning: merge --encoder is deprecated; merged "
                   "summaries are always naive\n");
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      inputs.push_back(arg);
    } else {
      return Usage();
    }
  }
  if (inputs.empty()) return Usage();

  LogROptions opts;
  std::vector<PersistedSummary> parts(inputs.size());
  std::string error;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!ReadSummaryFile(inputs[i], &parts[i], &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
  }
  PersistedSummary merged;
  if (!MergeSummaries(parts, clusters, opts, &merged, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const WorkloadModel& model = *merged.model;
  std::printf("merged %zu summaries: %zu clusters, %llu queries, error "
              "%.4f nats, verbosity %zu\n",
              parts.size(), model.NumComponents(),
              static_cast<unsigned long long>(model.LogSize()),
              model.Error(), model.TotalVerbosity());
  if (!WriteSummaryFile(out_path, merged.vocabulary, model, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

/// Loads LOG (text SQL or binary .logrl) into `log`/`binary`, binding
/// `view` to whichever backs it. Shared by split. Returns 0 on
/// success, the process exit code otherwise.
int LoadAnyLog(const std::string& in_path, QueryLog* log,
               MmapQueryLog* binary, LogView* view) {
  if (!in_path.empty() && IsBinaryLogFile(in_path)) {
    std::string error;
    if (!MmapQueryLog::Open(in_path, binary, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    *view = LogView(*binary);
    return 0;
  }
  std::ifstream file;
  std::istream* in = &std::cin;
  if (!in_path.empty()) {
    file.open(in_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", in_path.c_str());
      return 1;
    }
    in = &file;
  }
  LogLoader loader;
  std::uint64_t lines = ReadTextLog(*in, &loader);
  PrintFunnel(lines, loader.Summary("cli"));
  *log = loader.TakeLog();
  *view = LogView(*log);
  return 0;
}

int RunSplit(int argc, char** argv) {
  std::size_t shards = 4;
  ShardPolicy shard_policy = ShardPolicy::kHashDistinct;
  std::string out_dir = "shards";
  std::string name = "cli";
  std::string in_path;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      long long parsed;
      if (!ParseCount(argv[++i], 1, &parsed)) {
        std::fprintf(stderr, "--shards must be an integer >= 1\n");
        return 2;
      }
      shards = static_cast<std::size_t>(parsed);
    } else if (arg == "--shard-policy" && i + 1 < argc) {
      if (!ParseShardPolicy(argv[++i], &shard_policy)) {
        std::fprintf(stderr, "--shard-policy must be hash or range\n");
        return 2;
      }
    } else if (arg == "--out-dir" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--name" && i + 1 < argc) {
      name = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      in_path = arg;
    } else {
      return Usage();
    }
  }

  QueryLog log;
  MmapQueryLog binary;
  LogView view;
  if (int rc = LoadAnyLog(in_path, &log, &binary, &view)) return rc;
  if (view.NumDistinct() == 0) {
    std::fprintf(stderr, "no usable queries\n");
    return 1;
  }

  std::string dir_error;
  if (!EnsureDirectory(out_dir, &dir_error)) {
    std::fprintf(stderr, "%s\n", dir_error.c_str());
    return 1;
  }
  const std::vector<std::vector<std::size_t>> parts =
      ShardedCompressor::PartitionIndices(view, shards, shard_policy);
  for (std::size_t s = 0; s < parts.size(); ++s) {
    QueryLog sublog = view.MaterializeSubset(parts[s]);
    DatasetSummary stats;
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "-s%03zu", s);
    stats.name = name + suffix;
    stats.num_queries = sublog.TotalQueries();
    stats.num_distinct = sublog.NumDistinct();
    stats.num_distinct_no_const = sublog.NumDistinct();
    stats.max_multiplicity = sublog.MaxMultiplicity();
    stats.num_features = sublog.NumFeatures();
    stats.num_features_no_const = sublog.NumFeatures();
    stats.avg_features_per_query = sublog.AvgFeaturesPerQuery();
    char file_name[64];
    std::snprintf(file_name, sizeof(file_name), "/shard-%03zu.logrl", s);
    const std::string path = out_dir + file_name;
    std::string error;
    if (!BinaryLogWriter::WriteFile(path, sublog, stats, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu distinct, %llu queries)\n", path.c_str(),
                sublog.NumDistinct(),
                static_cast<unsigned long long>(sublog.TotalQueries()));
  }
  std::printf("split %zu distinct templates into %zu shards under %s — "
              "compress them with `logr_cli distribute %s`\n",
              view.NumDistinct(), parts.size(), out_dir.c_str(),
              out_dir.c_str());
  return 0;
}

int RunDistribute(int argc, char** argv) {
  DistributedOptions opts;
  opts.compression.num_clusters = 8;
  opts.spool_dir = "spool";
  std::string method = "kmeans";
  std::string out_path = "distributed.logr";
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    long long parsed;
    if (arg == "--workers" && i + 1 < argc) {
      if (!ParseCount(argv[++i], 1, &parsed)) {
        std::fprintf(stderr, "--workers must be an integer >= 1\n");
        return 2;
      }
      opts.num_workers = static_cast<std::size_t>(parsed);
    } else if (arg == "--clusters" && i + 1 < argc) {
      if (!ParseCount(argv[++i], 1, &parsed)) {
        std::fprintf(stderr, "--clusters must be an integer >= 1\n");
        return 2;
      }
      opts.compression.num_clusters = static_cast<std::size_t>(parsed);
    } else if (arg == "--method" && i + 1 < argc) {
      method = argv[++i];
    } else if (arg == "--spool" && i + 1 < argc) {
      opts.spool_dir = argv[++i];
    } else if (arg == "--retries" && i + 1 < argc) {
      if (!ParseCount(argv[++i], 0, &parsed)) {
        std::fprintf(stderr, "--retries must be an integer >= 0\n");
        return 2;
      }
      opts.max_retries = static_cast<int>(parsed);
    } else if (arg == "--timeout" && i + 1 < argc) {
      if (!ParseCount(argv[++i], 1, &parsed)) {
        std::fprintf(stderr, "--timeout must be an integer >= 1 (seconds)\n");
        return 2;
      }
      opts.worker_timeout_seconds = static_cast<double>(parsed);
    } else if (arg == "--no-resume") {
      opts.reuse_spool = false;
    } else if (arg == "--no-fallback") {
      opts.inprocess_fallback = false;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      inputs.push_back(arg);
    } else {
      return Usage();
    }
  }
  if (inputs.empty()) return Usage();
  if (!ParseClusteringMethod(method, &opts.compression.method)) {
    if (ClustererRegistry::Instance().Find(method) == nullptr) {
      std::fprintf(stderr, "unknown method %s\n", method.c_str());
      return 2;
    }
    opts.compression.backend = method;
  }

  // Positional arguments: .logrl shard files, or directories of them.
  std::vector<std::string> shard_paths;
  for (const std::string& input : inputs) {
    if (IsBinaryLogFile(input)) {
      shard_paths.push_back(input);
      continue;
    }
    std::vector<std::string> listed;
    std::string error;
    if (!ListBinaryLogShards(input, &listed, &error) || listed.empty()) {
      std::fprintf(stderr,
                   "%s is neither a .logrl file nor a directory "
                   "containing them\n",
                   input.c_str());
      return 2;
    }
    for (std::string& p : listed) shard_paths.push_back(std::move(p));
  }

  // Workers re-exec this binary in the hidden `worker` mode.
  std::string self = CurrentExecutablePath();
  if (self.empty()) self = argv[0];
  opts.worker_command = {self};

  DistributedResult result;
  std::string error;
  if (!CompressDistributed(shard_paths, opts, &result, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  for (const ShardReport& r : result.shards) {
    const char* how = r.reused ? "reused spooled summary"
                     : r.inprocess ? "compressed in-process (fallback)"
                                   : "compressed by worker";
    std::printf("  %s: %s (%d attempt%s%s)\n", r.shard_path.c_str(), how,
                r.attempts, r.attempts == 1 ? "" : "s",
                r.timed_out ? ", hit watchdog" : "");
  }
  const WorkloadModel& model = *result.summary.model;
  std::printf("distributed %zu shards over %zu workers in %.2fs "
              "(%zu spawned, %zu failed): %zu clusters, %llu queries, "
              "error %.4f nats\n",
              result.shards.size(), opts.num_workers, result.total_seconds,
              result.workers_launched, result.workers_failed,
              model.NumComponents(),
              static_cast<unsigned long long>(model.LogSize()),
              model.Error());
  if (!WriteSummaryFile(out_path, result.summary.vocabulary, model,
                        &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

/// Hidden subcommand: one scatter worker (spawned by `distribute`,
/// never typed by hand — absent from Usage() on purpose).
int RunWorker(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.push_back(argv[i]);
  DistributedWorkerOptions opts;
  std::string error;
  if (!ParseWorkerArgv(args, &opts, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  if (!RunDistributedWorker(opts, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  return 0;
}

int RunInfo(int argc, char** argv) {
  if (argc < 3) return Usage();
  PersistedSummary s;
  std::string error;
  if (!ReadSummaryFile(argv[2], &s, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const WorkloadModel& model = *s.model;
  std::printf("summary %s [%s]: %zu features, %zu clusters, %llu queries\n",
              argv[2], model.EncoderName(), s.vocabulary.size(),
              model.NumComponents(),
              static_cast<unsigned long long>(model.LogSize()));
  for (std::size_t c = 0; c < model.NumComponents(); ++c) {
    std::printf("  cluster %zu: weight %.4f, |L| %llu, verbosity %zu\n", c,
                model.ComponentWeight(c),
                static_cast<unsigned long long>(model.ComponentLogSize(c)),
                model.ComponentVerbosity(c));
  }
  return 0;
}

int RunEstimate(int argc, char** argv) {
  if (argc < 4) return Usage();
  PersistedSummary s;
  std::string error;
  if (!ReadSummaryFile(argv[2], &s, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  // The canonical parser (shared with the serve protocol) accepts both
  // CLAUSE:TEXT terms and numeric feature ids, rejects malformed terms
  // loudly, and sorts + dedupes the result. Each argument may itself be
  // a comma-separated list, the same syntax the protocol accepts.
  std::vector<std::string> terms;
  for (int i = 3; i < argc; ++i) {
    for (std::string& t : SplitPredicateList(argv[i])) {
      terms.push_back(std::move(t));
    }
  }
  ParsedPredicate pred;
  if (!ParsePredicate(terms, s.vocabulary, &pred, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  if (!pred.missing.empty()) {
    for (const std::string& m : pred.missing) {
      std::printf("feature %s never occurs in the summarized log; "
                  "estimate 0\n",
                  m.c_str());
    }
    return 0;
  }
  std::printf("est[ count ] = %.2f of %llu queries (marginal %.6f)\n",
              s.model->EstimateCount(pred.features),
              static_cast<unsigned long long>(s.model->LogSize()),
              s.model->EstimateMarginal(pred.features));
  return 0;
}

int RunQuery(int argc, char** argv) {
  RetryOptions retry;
  int i = 2;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--timeout" && i + 1 < argc) {
      long long ms = 0;
      if (!ParseCount(argv[++i], 0, &ms)) {
        std::fprintf(stderr, "query: bad --timeout '%s'\n", argv[i]);
        return 2;
      }
      // One deadline covers both phases: a hung connect and a hung
      // response are the same outage to the caller.
      retry.connect_timeout_ms = static_cast<int>(ms);
      retry.request_timeout_ms = static_cast<int>(ms);
    } else if (arg == "--retries" && i + 1 < argc) {
      long long n = 0;
      if (!ParseCount(argv[++i], 0, &n)) {
        std::fprintf(stderr, "query: bad --retries '%s'\n", argv[i]);
        return 2;
      }
      retry.max_retries = static_cast<int>(n);
    } else {
      break;
    }
  }
  if (argc - i < 2) return Usage();
  const std::string endpoint = argv[i++];
  // The remaining args are one request line; joining them back lets the
  // shell split "estimate prod WHERE:status = ?" naturally.
  std::string request;
  for (int first = i; i < argc; ++i) {
    if (i > first) request += " ";
    request += argv[i];
  }
  const QueryOutcome outcome = QueryWithRetry(endpoint, request, retry);
  if (!outcome.ok) {
    std::fprintf(stderr, "%s (after %d attempt%s)\n",
                 outcome.error.c_str(), outcome.attempts,
                 outcome.attempts == 1 ? "" : "s");
    return 1;
  }
  std::printf("%s\n", outcome.response.c_str());
  return outcome.response.rfind("ok", 0) == 0 ? 0 : 1;
}

int RunVisualize(int argc, char** argv) {
  if (argc < 3) return Usage();
  PersistedSummary s;
  std::string error;
  if (!ReadSummaryFile(argv[2], &s, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::fputs(RenderMixture(s.vocabulary, *s.model).c_str(), stdout);
  return 0;
}

int RunDemo() {
  PocketDataOptions gen;
  gen.num_distinct = 200;
  gen.total_queries = 100000;
  std::vector<LogEntry> entries = GeneratePocketDataLog(gen);
  LogLoader loader = LoadEntries(entries);
  QueryLog log = loader.TakeLog();
  LogROptions opts;
  opts.num_clusters = 6;
  LogRSummary summary = Compress(log, opts);
  const WorkloadModel& model = summary.Model();
  std::printf("demo: %llu queries -> %zu clusters, error %.3f nats, "
              "verbosity %zu\n",
              static_cast<unsigned long long>(log.TotalQueries()),
              model.NumComponents(), model.Error(), model.TotalVerbosity());
  std::string error;
  if (!WriteSummaryFile("demo_summary.logr", log.vocabulary(), model,
                        &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote demo_summary.logr — try:\n"
              "  logr_cli info demo_summary.logr\n"
              "  logr_cli estimate demo_summary.logr \"FROM:messages\"\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "compress") == 0) return RunCompress(argc, argv);
  if (std::strcmp(argv[1], "convert") == 0) return RunConvert(argc, argv);
  if (std::strcmp(argv[1], "split") == 0) return RunSplit(argc, argv);
  if (std::strcmp(argv[1], "distribute") == 0) {
    return RunDistribute(argc, argv);
  }
  if (std::strcmp(argv[1], "worker") == 0) return RunWorker(argc, argv);
  if (std::strcmp(argv[1], "merge") == 0) return RunMerge(argc, argv);
  if (std::strcmp(argv[1], "info") == 0) return RunInfo(argc, argv);
  if (std::strcmp(argv[1], "estimate") == 0) return RunEstimate(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return RunQuery(argc, argv);
  if (std::strcmp(argv[1], "visualize") == 0) return RunVisualize(argc, argv);
  if (std::strcmp(argv[1], "demo") == 0) return RunDemo();
  return Usage();
}
