// logr_cli — command-line front end for the LogR library.
//
//   logr_cli compress [--clusters K] [--method NAME] [--refine N]
//                     [--shards S] [--shard-policy hash|range]
//                     [--out FILE] [LOG]
//       Reads SQL statements (one per line; an optional "COUNT<TAB>"
//       prefix gives a multiplicity) from LOG or stdin, compresses them,
//       and writes a summary file. --refine N reports the Error after
//       refining each cluster with up to N extra patterns (Sec. 6.4).
//       --shards S > 1 compresses shard-wise in parallel and merges the
//       per-shard mixtures (bit-deterministic for any thread count).
//   logr_cli merge [--clusters K] [--method NAME] [--out FILE] SUMMARY...
//       Merges summary files written by compress (e.g. one per day or
//       per shard) into one, reconciling down to K clusters when the
//       pooled components exceed K ("compress each day, merge the week").
//   logr_cli info SUMMARY
//       Prints the summary's clusters, weights and verbosities.
//   logr_cli estimate SUMMARY CLAUSE:TEXT [CLAUSE:TEXT ...]
//       Estimates how many logged queries contain all the given
//       features, e.g.  logr_cli estimate s.logr "WHERE:status = ?".
//   logr_cli visualize SUMMARY
//       Renders each cluster as a shaded SQL template (Fig. 10 style).
//   logr_cli demo
//       Compresses a built-in synthetic workload end to end.
//
// Methods: kmeans (default), manhattan, minkowski, hamming, hierarchical,
// adaptive, or any backend name registered in ClustererRegistry.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/logr_compressor.h"
#include "core/serialization.h"
#include "core/visualize.h"
#include "data/pocketdata.h"
#include "data/sql_log.h"
#include "workload/loader.h"

namespace {

using namespace logr;

int Usage() {
  std::fprintf(stderr,
               "usage: logr_cli compress [--clusters K] [--method NAME] "
               "[--refine N] [--shards S] [--shard-policy hash|range] "
               "[--out FILE] [LOG]\n"
               "       logr_cli merge [--clusters K] [--method NAME] "
               "[--out FILE] SUMMARY...\n"
               "       logr_cli info SUMMARY\n"
               "       logr_cli estimate SUMMARY CLAUSE:TEXT...\n"
               "       logr_cli visualize SUMMARY\n"
               "       logr_cli demo\n");
  return 2;
}

// Strict non-negative integer parse: rejects trailing garbage ("8x")
// and non-numbers ("five"), which atoll would silently read as 0.
bool ParseCount(const char* text, long long min_value, long long* out) {
  char* end = nullptr;
  long long parsed = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || parsed < min_value) return false;
  *out = parsed;
  return true;
}

bool ParseClause(const std::string& label, FeatureClause* clause) {
  if (label == "SELECT") *clause = FeatureClause::kSelect;
  else if (label == "FROM") *clause = FeatureClause::kFrom;
  else if (label == "WHERE") *clause = FeatureClause::kWhere;
  else if (label == "GROUPBY") *clause = FeatureClause::kGroupBy;
  else if (label == "ORDERBY") *clause = FeatureClause::kOrderBy;
  else if (label == "LIMIT") *clause = FeatureClause::kLimit;
  else return false;
  return true;
}

int RunCompress(int argc, char** argv) {
  std::size_t clusters = 8;
  std::size_t refine = 0;
  std::size_t shards = 1;
  ShardPolicy shard_policy = ShardPolicy::kHashDistinct;
  std::string method = "kmeans";
  std::string out_path = "summary.logr";
  std::string in_path;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--clusters" && i + 1 < argc) {
      long long parsed;
      if (!ParseCount(argv[++i], 1, &parsed)) {
        std::fprintf(stderr, "--clusters must be an integer >= 1\n");
        return 2;
      }
      clusters = static_cast<std::size_t>(parsed);
    } else if (arg == "--method" && i + 1 < argc) {
      method = argv[++i];
    } else if (arg == "--refine" && i + 1 < argc) {
      long long parsed;
      if (!ParseCount(argv[++i], 0, &parsed)) {
        std::fprintf(stderr, "--refine must be an integer >= 0\n");
        return 2;
      }
      refine = static_cast<std::size_t>(parsed);
    } else if (arg == "--shards" && i + 1 < argc) {
      long long parsed;
      if (!ParseCount(argv[++i], 1, &parsed)) {
        std::fprintf(stderr, "--shards must be an integer >= 1\n");
        return 2;
      }
      shards = static_cast<std::size_t>(parsed);
    } else if (arg == "--shard-policy" && i + 1 < argc) {
      if (!ParseShardPolicy(argv[++i], &shard_policy)) {
        std::fprintf(stderr, "--shard-policy must be hash or range\n");
        return 2;
      }
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      in_path = arg;
    } else {
      return Usage();
    }
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (!in_path.empty()) {
    file.open(in_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", in_path.c_str());
      return 1;
    }
    in = &file;
  }

  LogLoader loader;
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    std::uint64_t count = 1;
    std::string sql_text = line;
    std::size_t tab = line.find('\t');
    if (tab != std::string::npos) {
      long long parsed = std::atoll(line.substr(0, tab).c_str());
      if (parsed > 0) {
        count = static_cast<std::uint64_t>(parsed);
        sql_text = line.substr(tab + 1);
      }
    }
    loader.AddSql(sql_text, count);
    ++lines;
  }
  DatasetSummary stats = loader.Summary("cli");
  std::printf("read %llu lines: %llu SELECT queries, %llu non-SELECT, "
              "%llu unparseable\n",
              static_cast<unsigned long long>(lines),
              static_cast<unsigned long long>(stats.num_queries),
              static_cast<unsigned long long>(stats.num_non_select),
              static_cast<unsigned long long>(stats.num_parse_errors));
  if (stats.num_queries == 0) {
    std::fprintf(stderr, "no usable queries\n");
    return 1;
  }

  QueryLog log = loader.TakeLog();
  LogROptions opts;
  opts.num_clusters = clusters;
  opts.refine_patterns = refine;
  opts.num_shards = shards;
  opts.shard_policy = shard_policy;
  LogRSummary summary;
  if (method == "adaptive") {
    if (shards > 1) {
      std::fprintf(stderr, "--shards does not combine with adaptive yet\n");
      return 2;
    }
    summary = CompressAdaptive(log, clusters, opts);
  } else {
    if (!ParseClusteringMethod(method, &opts.method)) {
      // Not a built-in method name; accept any registered backend.
      if (ClustererRegistry::Instance().Find(method) == nullptr) {
        std::fprintf(stderr, "unknown method %s; registered backends:\n",
                     method.c_str());
        for (const std::string& name :
             ClustererRegistry::Instance().Names()) {
          std::fprintf(stderr, "  %s\n", name.c_str());
        }
        return 2;
      }
      opts.backend = method;
    }
    summary = Compress(log, opts);
  }
  std::printf("compressed: %zu clusters, error %.4f nats, verbosity %zu "
              "(from %zu distinct templates, %zu features)\n",
              summary.encoding.NumComponents(), summary.encoding.Error(),
              summary.encoding.TotalVerbosity(), log.NumDistinct(),
              log.NumFeatures());
  if (refine > 0) {
    std::size_t extra = 0;
    for (const auto& patterns : summary.component_patterns) {
      extra += patterns.size();
    }
    std::printf("refined: error %.4f nats with %zu extra patterns "
                "(<= %zu per cluster)\n",
                summary.refined_error, extra, refine);
  }

  std::string error;
  if (!WriteSummaryFile(out_path, log.vocabulary(), summary.encoding,
                        &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

int RunMerge(int argc, char** argv) {
  std::size_t clusters = 0;  // 0 = keep every pooled component
  std::string method = "kmeans";
  std::string out_path = "merged.logr";
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--clusters" && i + 1 < argc) {
      long long parsed;
      if (!ParseCount(argv[++i], 1, &parsed)) {
        std::fprintf(stderr, "--clusters must be an integer >= 1\n");
        return 2;
      }
      clusters = static_cast<std::size_t>(parsed);
    } else if (arg == "--method" && i + 1 < argc) {
      method = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      inputs.push_back(arg);
    } else {
      return Usage();
    }
  }
  if (inputs.empty()) return Usage();

  LogROptions opts;
  if (!ParseClusteringMethod(method, &opts.method)) {
    if (ClustererRegistry::Instance().Find(method) == nullptr) {
      std::fprintf(stderr, "unknown method %s\n", method.c_str());
      return 2;
    }
    opts.backend = method;
  }

  std::vector<PersistedSummary> parts(inputs.size());
  std::string error;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!ReadSummaryFile(inputs[i], &parts[i], &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
  }
  PersistedSummary merged;
  if (!MergeSummaries(parts, clusters, opts, &merged, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("merged %zu summaries: %zu clusters, %llu queries, error "
              "%.4f nats, verbosity %zu\n",
              parts.size(), merged.encoding.NumComponents(),
              static_cast<unsigned long long>(merged.encoding.LogSize()),
              merged.encoding.Error(), merged.encoding.TotalVerbosity());
  if (!WriteSummaryFile(out_path, merged.vocabulary, merged.encoding,
                        &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

int RunInfo(int argc, char** argv) {
  if (argc < 3) return Usage();
  PersistedSummary s;
  std::string error;
  if (!ReadSummaryFile(argv[2], &s, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("summary %s: %zu features, %zu clusters, %llu queries\n",
              argv[2], s.vocabulary.size(), s.encoding.NumComponents(),
              static_cast<unsigned long long>(s.encoding.LogSize()));
  for (std::size_t c = 0; c < s.encoding.NumComponents(); ++c) {
    const MixtureComponent& comp = s.encoding.Component(c);
    std::printf("  cluster %zu: weight %.4f, |L| %llu, verbosity %zu\n", c,
                comp.weight,
                static_cast<unsigned long long>(comp.encoding.LogSize()),
                comp.encoding.Verbosity());
  }
  return 0;
}

int RunEstimate(int argc, char** argv) {
  if (argc < 4) return Usage();
  PersistedSummary s;
  std::string error;
  if (!ReadSummaryFile(argv[2], &s, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::vector<FeatureId> ids;
  for (int i = 3; i < argc; ++i) {
    std::string spec = argv[i];
    std::size_t colon = spec.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "feature spec must be CLAUSE:TEXT, got %s\n",
                   spec.c_str());
      return 2;
    }
    FeatureClause clause;
    if (!ParseClause(spec.substr(0, colon), &clause)) {
      std::fprintf(stderr, "unknown clause in %s\n", spec.c_str());
      return 2;
    }
    Feature feat{clause, spec.substr(colon + 1)};
    FeatureId id = s.vocabulary.Find(feat);
    if (id == Vocabulary::kNotFound) {
      std::printf("feature %s never occurs in the summarized log; "
                  "estimate 0\n",
                  feat.ToString().c_str());
      return 0;
    }
    ids.push_back(id);
  }
  FeatureVec pattern(std::move(ids));
  std::printf("est[ count ] = %.2f of %llu queries (marginal %.6f)\n",
              s.encoding.EstimateCount(pattern),
              static_cast<unsigned long long>(s.encoding.LogSize()),
              s.encoding.EstimateMarginal(pattern));
  return 0;
}

int RunVisualize(int argc, char** argv) {
  if (argc < 3) return Usage();
  PersistedSummary s;
  std::string error;
  if (!ReadSummaryFile(argv[2], &s, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::fputs(RenderMixture(s.vocabulary, s.encoding).c_str(), stdout);
  return 0;
}

int RunDemo() {
  PocketDataOptions gen;
  gen.num_distinct = 200;
  gen.total_queries = 100000;
  std::vector<LogEntry> entries = GeneratePocketDataLog(gen);
  LogLoader loader = LoadEntries(entries);
  QueryLog log = loader.TakeLog();
  LogROptions opts;
  opts.num_clusters = 6;
  LogRSummary summary = Compress(log, opts);
  std::printf("demo: %llu queries -> %zu clusters, error %.3f nats, "
              "verbosity %zu\n",
              static_cast<unsigned long long>(log.TotalQueries()),
              summary.encoding.NumComponents(), summary.encoding.Error(),
              summary.encoding.TotalVerbosity());
  std::string error;
  if (!WriteSummaryFile("demo_summary.logr", log.vocabulary(),
                        summary.encoding, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote demo_summary.logr — try:\n"
              "  logr_cli info demo_summary.logr\n"
              "  logr_cli estimate demo_summary.logr \"FROM:messages\"\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "compress") == 0) return RunCompress(argc, argv);
  if (std::strcmp(argv[1], "merge") == 0) return RunMerge(argc, argv);
  if (std::strcmp(argv[1], "info") == 0) return RunInfo(argc, argv);
  if (std::strcmp(argv[1], "estimate") == 0) return RunEstimate(argc, argv);
  if (std::strcmp(argv[1], "visualize") == 0) return RunVisualize(argc, argv);
  if (std::strcmp(argv[1], "demo") == 0) return RunDemo();
  return Usage();
}
