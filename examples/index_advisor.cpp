// Index advisor driven by a LogR-compressed workload (paper Sec. 2,
// "Index Selection": if status = ? occurs in 90% of queries, a hash
// index on status is beneficial).
//
// The advisor never rescans the log: all frequency estimates come from
// the compressed naive-mixture summary, which is the paper's headline
// use case — repeated what-if estimation over a compact encoding.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/logr_compressor.h"
#include "data/bank.h"
#include "data/sql_log.h"
#include "util/string_util.h"

namespace {

using namespace logr;

struct IndexCandidate {
  std::string table;
  std::string column_predicate;
  double estimated_queries = 0.0;
  double share = 0.0;
};

}  // namespace

int main() {
  using namespace logr;

  // Load the bank-like workload and compress it.
  BankLogOptions gen;
  gen.num_templates = 400;  // keep the example snappy
  LogLoader loader = LoadEntries(GenerateBankLog(gen));
  QueryLog log = loader.TakeLog();

  LogROptions options;
  options.num_clusters = 12;
  LogRSummary summary = Compress(log, options);
  // Every estimate below goes through the encoding-agnostic facade, so
  // swapping options.encoder ("refined", "pattern", ...) changes the
  // summarizer without touching the advisor.
  const WorkloadModel& model = summary.Model();
  std::printf("Compressed %llu queries into %zu cluster encodings "
              "(error %.2f nats)\n\n",
              static_cast<unsigned long long>(log.TotalQueries()),
              model.NumComponents(), model.Error());

  // Rank single-column predicates by their estimated frequency. A WHERE
  // feature "col = ?" (or a range form) on a frequently queried table is
  // an index candidate; the estimate comes from the summary alone.
  std::vector<IndexCandidate> candidates;
  const double total = static_cast<double>(log.TotalQueries());
  for (FeatureId f = 0; f < log.vocabulary().size(); ++f) {
    const Feature& feat = log.vocabulary().Get(f);
    if (feat.clause != FeatureClause::kWhere) continue;
    // Equality and range predicates on a single column.
    std::size_t op_pos = feat.text.find(" = ?");
    bool equality = op_pos != std::string::npos;
    if (!equality) {
      op_pos = feat.text.find(" >");
      if (op_pos == std::string::npos) op_pos = feat.text.find(" <");
      if (op_pos == std::string::npos) continue;
    }
    IndexCandidate c;
    c.column_predicate = feat.text;
    c.estimated_queries = model.EstimateCount(FeatureVec({f}));
    c.share = c.estimated_queries / total;
    if (c.share >= 0.01) candidates.push_back(std::move(c));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const IndexCandidate& a, const IndexCandidate& b) {
              return a.estimated_queries > b.estimated_queries;
            });

  std::printf("Top index candidates (single-column predicates):\n");
  std::printf("%-36s %14s %8s\n", "predicate", "est. queries", "share");
  std::size_t shown = 0;
  for (const IndexCandidate& c : candidates) {
    if (++shown > 10) break;
    std::printf("%-36s %14.0f %7.1f%%\n", c.column_predicate.c_str(),
                c.estimated_queries, 100.0 * c.share);
  }

  // Composite-index check: do the top two predicates co-occur often
  // enough to justify a compound index? This needs a *joint* frequency,
  // which the mixture estimates without rescanning the log.
  if (candidates.size() >= 2) {
    const Feature a{FeatureClause::kWhere, candidates[0].column_predicate};
    const Feature b{FeatureClause::kWhere, candidates[1].column_predicate};
    FeatureId fa = log.vocabulary().Find(a);
    FeatureId fb = log.vocabulary().Find(b);
    double joint = model.EstimateCount(FeatureVec({fa, fb}));
    std::printf("\nComposite candidate [%s AND %s]: est. %.0f queries "
                "(%.2f%% of workload)\n",
                a.text.c_str(), b.text.c_str(), joint,
                100.0 * joint / total);
    if (joint / total > 0.05) {
      std::printf("-> co-occurrence is frequent; consider a compound "
                  "index.\n");
    } else {
      std::printf("-> predicates rarely co-occur; separate indexes "
                  "suffice.\n");
    }
  }
  return 0;
}
