// Interpretable visualization of a naive mixture encoding (paper
// Sec. 2.3.2 / Appendix E, Figures 1 and 10), using the library's
// renderer (core/visualize.h).
//
// Each cluster renders as a synthetic SQL template whose SELECT / FROM /
// WHERE elements carry shading glyphs for their marginals — the textual
// analogue of Fig. 10's gray levels. The paper visualizes PocketData
// under 8 clusters and notes one cluster is "too messy" and needs
// sub-clustering; the renderer flags that case the same way.
#include <cstdio>

#include "core/logr_compressor.h"
#include "core/visualize.h"
#include "data/pocketdata.h"
#include "data/sql_log.h"

int main() {
  using namespace logr;

  PocketDataOptions gen;
  LogLoader loader = LoadEntries(GeneratePocketDataLog(gen));
  QueryLog log = loader.TakeLog();

  // Appendix E visualizes PocketData under 8 clusters.
  LogROptions options;
  options.method = ClusteringMethod::kKMeansEuclidean;
  options.num_clusters = 8;
  LogRSummary summary = Compress(log, options);

  // Rendering goes through the WorkloadModel facade, so any encoder's
  // summary (naive, refined, pattern, ...) visualizes identically.
  const WorkloadModel& model = summary.Model();
  std::printf("%s mixture encoding of the PocketData-like log, "
              "%zu clusters (Fig. 10 style)\n",
              model.EncoderName(), model.NumComponents());
  std::printf("Shading: '#' >= 0.95, '+' >= 0.50, '.' >= 0.15 marginal\n\n");
  std::fputs(RenderMixture(log.vocabulary(), model).c_str(), stdout);
  return 0;
}
