// Materialized-view advisor driven by a LogR summary (paper Sec. 2,
// "Materialized View Selection": the results of joins that appear
// frequently in the workload are good candidates for materialization;
// view selection needs repeated frequency estimation over the workload).
//
// The advisor estimates, from the compressed summary only:
//   1. how often each table pair is joined (FROM co-occurrence with the
//      join's ON atom), and
//   2. how often frequent selection predicates ride on those joins —
//      candidates for *filtered* materialized views.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/logr_compressor.h"
#include "data/bank.h"
#include "data/sql_log.h"

namespace {

using namespace logr;

struct ViewCandidate {
  std::string description;
  double estimated_queries = 0.0;
};

}  // namespace

int main() {
  using namespace logr;

  BankLogOptions gen;
  gen.num_templates = 400;
  LogLoader loader = LoadEntries(GenerateBankLog(gen));
  QueryLog log = loader.TakeLog();

  LogROptions options;
  options.num_clusters = 12;
  LogRSummary summary = Compress(log, options);
  // Joint-frequency estimates come from the encoding-agnostic facade;
  // any registered encoder serves this advisor unchanged.
  const WorkloadModel& model = summary.Model();
  const double total = static_cast<double>(log.TotalQueries());
  std::printf("Compressed %llu queries; advising from the %zu-cluster "
              "summary (error %.2f nats)\n\n",
              static_cast<unsigned long long>(log.TotalQueries()),
              model.NumComponents(), model.Error());

  // Collect FROM features (tables) and WHERE features that look like
  // join atoms ("a.x = b.y") or selection predicates.
  std::vector<FeatureId> tables;
  std::vector<FeatureId> join_atoms;
  std::vector<FeatureId> predicates;
  for (FeatureId f = 0; f < log.vocabulary().size(); ++f) {
    const Feature& feat = log.vocabulary().Get(f);
    if (feat.clause == FeatureClause::kFrom) {
      tables.push_back(f);
    } else if (feat.clause == FeatureClause::kWhere) {
      bool qualified_eq = feat.text.find(" = ") != std::string::npos &&
                          feat.text.find('.') != std::string::npos &&
                          feat.text.find('?') == std::string::npos;
      if (qualified_eq) {
        join_atoms.push_back(f);
      } else {
        predicates.push_back(f);
      }
    }
  }

  // 1. Join views: table pairs that co-occur with a join atom.
  std::vector<ViewCandidate> joins;
  for (FeatureId join : join_atoms) {
    const Feature& jf = log.vocabulary().Get(join);
    double est = model.EstimateCount(FeatureVec({join}));
    if (est / total < 0.005) continue;
    ViewCandidate c;
    c.description = "JOIN ON " + jf.text;
    c.estimated_queries = est;
    joins.push_back(std::move(c));
  }
  std::sort(joins.begin(), joins.end(),
            [](const ViewCandidate& a, const ViewCandidate& b) {
              return a.estimated_queries > b.estimated_queries;
            });
  std::printf("Top join-view candidates:\n");
  for (std::size_t i = 0; i < joins.size() && i < 6; ++i) {
    std::printf("  %7.0f queries (%5.1f%%)  %s\n",
                joins[i].estimated_queries,
                100.0 * joins[i].estimated_queries / total,
                joins[i].description.c_str());
  }

  // 2. Filtered views: a frequent join atom combined with a frequent
  //    selection predicate — the co-occurrence count comes from the
  //    mixture, not from rescanning the log.
  std::printf("\nTop filtered-view candidates (join + predicate):\n");
  std::vector<ViewCandidate> filtered;
  std::size_t probe_joins = std::min<std::size_t>(join_atoms.size(), 8);
  std::size_t probe_preds = std::min<std::size_t>(predicates.size(), 200);
  for (std::size_t j = 0; j < probe_joins; ++j) {
    for (std::size_t p = 0; p < probe_preds; ++p) {
      FeatureVec pattern({join_atoms[j], predicates[p]});
      double est = model.EstimateCount(pattern);
      if (est / total < 0.01) continue;
      ViewCandidate c;
      c.description = log.vocabulary().Get(join_atoms[j]).text + "  AND  " +
                      log.vocabulary().Get(predicates[p]).text;
      c.estimated_queries = est;
      filtered.push_back(std::move(c));
    }
  }
  std::sort(filtered.begin(), filtered.end(),
            [](const ViewCandidate& a, const ViewCandidate& b) {
              return a.estimated_queries > b.estimated_queries;
            });
  for (std::size_t i = 0; i < filtered.size() && i < 6; ++i) {
    std::printf("  %7.0f queries (%5.1f%%)  %s\n",
                filtered[i].estimated_queries,
                100.0 * filtered[i].estimated_queries / total,
                filtered[i].description.c_str());
  }
  if (filtered.empty()) {
    std::printf("  (no join+predicate combination above the 1%% support "
                "threshold)\n");
  }
  return 0;
}
