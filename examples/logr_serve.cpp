// logr_serve — workload-analytics daemon over a directory of summaries.
//
//   logr_serve --dir DIR [--listen ENDPOINT] [--rescan-ms N]
//              [--max-conns N] [--idle-ms N] [--drain-ms N]
//
// Loads every *.logr summary in DIR and serves the line protocol
// (serve/protocol.h) on ENDPOINT — "unix:PATH" for a Unix domain
// socket, "tcp:HOST:PORT" / "PORT" for TCP; port 0 picks an ephemeral
// port, printed on startup. The directory is rescanned every
// --rescan-ms milliseconds (default 500): drop a new summary in (the
// compressor's WriteSummaryFile renames it into place atomically) and
// it goes live without a restart, while in-flight requests drain on
// the snapshot they started with.
//
// The daemon is hardened for hostile and overload traffic: --max-conns
// caps concurrent connections (extras get an explicit "err busy" and
// should retry with backoff — `logr_cli query --retries`), --idle-ms
// cuts slow-loris peers that never send a request line, and
// SIGINT/SIGTERM drain gracefully: requests already received finish
// and flush their replies, bounded by --drain-ms. The `stats` protocol
// verb reports accepted/active/shed/timed-out/requests/rescans.
//
// Try it:
//   logr_cli compress --out summaries/prod.logr prod.sql
//   logr_serve --dir summaries --listen tcp:127.0.0.1:7979 &
//   logr_cli query tcp:127.0.0.1:7979 estimate prod "FROM:orders"
//   printf 'list\nquit\n' | nc 127.0.0.1 7979
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.h"
#include "serve/summary_registry.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage() {
  std::fprintf(stderr,
               "usage: logr_serve --dir DIR [--listen ENDPOINT] "
               "[--rescan-ms N]\n"
               "                  [--max-conns N] [--idle-ms N] "
               "[--drain-ms N]\n"
               "  ENDPOINT: unix:PATH | tcp:HOST:PORT | PORT "
               "(default tcp:127.0.0.1:0 = ephemeral)\n"
               "  --max-conns: concurrent-connection cap; extras get "
               "'err busy' (default 64, 0 = off)\n"
               "  --idle-ms:   per-connection idle/read deadline "
               "(default 30000, 0 = off)\n"
               "  --drain-ms:  shutdown drain budget for in-flight "
               "requests (default 2000)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  logr::ServeOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--listen" && i + 1 < argc) {
      opts.listen = argv[++i];
    } else if (arg == "--rescan-ms" && i + 1 < argc) {
      opts.rescan_interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--max-conns" && i + 1 < argc) {
      opts.max_connections =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--idle-ms" && i + 1 < argc) {
      opts.idle_timeout_ms = std::atoi(argv[++i]);
    } else if (arg == "--drain-ms" && i + 1 < argc) {
      opts.drain_timeout_ms = std::atoi(argv[++i]);
    } else {
      return Usage();
    }
  }
  if (dir.empty()) return Usage();

  logr::SummaryRegistry registry(dir);
  logr::ServeDaemon daemon(&registry);
  std::string error;
  if (!daemon.Start(opts, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  // One line, flushed, so wrapper scripts can scrape the endpoint (the
  // ephemeral-port case) before the first client connects.
  std::printf("serving %s at %s (%zu summaries)\n", dir.c_str(),
              daemon.endpoint().c_str(), registry.List().size());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) ::pause();

  daemon.Stop();
  std::printf("stopped after %llu connections\n",
              static_cast<unsigned long long>(daemon.ConnectionsAccepted()));
  return 0;
}
