// Online workload monitoring / intrusion detection (paper Sec. 2,
// "Online Database Monitoring": real-time monitoring needs the frequency
// of query classes in the system's *typical* workload — which is exactly
// what a LogR summary provides without rescanning the log).
//
// A baseline epoch of the PocketData-like app workload is compressed
// once. A monitored epoch replays half the workload plus injected
// exfiltration-style queries. Every structural feature's observed rate
// in the monitored epoch is compared against the baseline summary's
// estimate; features whose rate jumped are drift suspects, and the
// injected queries' SELECT/FROM features surface at the top.
#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "core/logr_compressor.h"
#include "data/pocketdata.h"
#include "data/sql_log.h"
#include "sql/parser.h"
#include "workload/extractor.h"

namespace {

using namespace logr;

// Queries an application never issues: bulk scans over sensitive tables.
const char* kInjected[] = {
    "SELECT full_name, gaia_id, avatar_url FROM participants",
    "SELECT name, logging_id, affinity_score FROM suggested_contacts",
    "SELECT text, sms_raw_sender, attachment_url FROM messages_dump",
};

}  // namespace

int main() {
  using namespace logr;

  // --- Baseline epoch: compress the normal workload. ---
  PocketDataOptions gen;
  gen.num_distinct = 300;
  gen.total_queries = 200000;
  std::vector<LogEntry> baseline_entries = GeneratePocketDataLog(gen);
  LogLoader baseline_loader = LoadEntries(baseline_entries);
  QueryLog baseline = baseline_loader.TakeLog();

  LogROptions options;
  options.num_clusters = 10;
  LogRSummary summary = Compress(baseline, options);
  // The monitor only ever needs facade estimates, so the baseline can
  // be summarized by any registered encoder.
  const WorkloadModel& model = summary.Model();
  const double baseline_total =
      static_cast<double>(baseline.TotalQueries());
  std::printf("Baseline: %llu queries summarized into %zu clusters "
              "(error %.2f nats, verbosity %zu)\n\n",
              static_cast<unsigned long long>(baseline.TotalQueries()),
              model.NumComponents(), model.Error(),
              model.TotalVerbosity());

  // --- Monitored epoch: half the normal traffic plus injections. ---
  LogLoader epoch_loader;
  for (const LogEntry& e : baseline_entries) {
    if (e.count / 2 > 0) epoch_loader.AddSql(e.sql, e.count / 2);
  }
  const std::uint64_t kInjectedCount = 900;
  std::set<std::string> injected_features;
  for (const char* sql_text : kInjected) {
    epoch_loader.AddSql(sql_text, kInjectedCount);
    sql::ParseResult parsed = sql::Parse(sql_text);
    sql::RegularizeInfo info;
    sql::StatementPtr regular = sql::Regularize(
        *parsed.statement, sql::RegularizeOptions(), &info);
    for (const Feature& f : ListFeatures(*regular, ExtractOptions())) {
      injected_features.insert(f.ToString());
    }
  }
  QueryLog epoch = epoch_loader.TakeLog();
  const double epoch_total = static_cast<double>(epoch.TotalQueries());

  // --- Compare per-feature rates: observed epoch rate vs the baseline
  //     summary's estimate (the compressed log answers this without
  //     touching the raw baseline).
  struct Drift {
    std::string feature;
    double epoch_rate;
    double baseline_rate;
    double ratio;
  };
  std::vector<Drift> drifts;
  std::vector<double> epoch_mass(epoch.NumFeatures(), 0.0);
  for (std::size_t i = 0; i < epoch.NumDistinct(); ++i) {
    for (FeatureId f : epoch.Vector(i).ids) {
      epoch_mass[f] += static_cast<double>(epoch.Multiplicity(i));
    }
  }
  for (FeatureId f = 0; f < epoch.vocabulary().size(); ++f) {
    double observed = epoch_mass[f] / epoch_total;
    if (observed < 5e-4) continue;  // below monitoring support floor
    const Feature& feat = epoch.vocabulary().Get(f);
    FeatureId base_id = baseline.vocabulary().Find(feat);
    double expected = 0.0;
    if (base_id != Vocabulary::kNotFound) {
      expected = model.EstimateCount(FeatureVec({base_id})) /
                 baseline_total;
    }
    Drift d;
    d.feature = feat.ToString();
    d.epoch_rate = observed;
    d.baseline_rate = expected;
    d.ratio = observed / std::max(expected, 1e-6);
    drifts.push_back(std::move(d));
  }
  std::sort(drifts.begin(), drifts.end(),
            [](const Drift& a, const Drift& b) { return a.ratio > b.ratio; });

  std::printf("Top drifted features (epoch rate vs baseline estimate):\n");
  std::printf("%-9s %-10s %-10s feature\n", "ratio", "epoch", "baseline");
  int caught = 0;
  for (std::size_t i = 0; i < drifts.size() && i < 8; ++i) {
    const Drift& d = drifts[i];
    bool is_injected = injected_features.count(d.feature) > 0;
    if (is_injected) ++caught;
    std::printf("%-9.1f %-10.6f %-10.6f %s%s\n", d.ratio, d.epoch_rate,
                d.baseline_rate, d.feature.c_str(),
                is_injected ? "   << injected" : "");
  }

  std::printf("\n%d of the top 8 drifted features belong to the injected "
              "queries.\n",
              caught);
  return caught >= 3 ? 0 : 1;
}
