// Quickstart: parse a small query log, compress it with LogR, and query
// the compressed summary for workload statistics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/logr_compressor.h"
#include "workload/loader.h"

int main() {
  using namespace logr;

  // 1. Feed raw SQL into the loading funnel. The loader parses,
  //    regularizes (constant removal, conjunctive rewriting) and encodes
  //    each statement as a feature vector.
  LogLoader loader;
  struct Entry {
    const char* sql;
    std::uint64_t count;
  };
  const Entry entries[] = {
      {"SELECT _id FROM Messages WHERE status = ?", 120},
      {"SELECT _time FROM Messages WHERE status = ? AND sms_type = ?", 40},
      {"SELECT sms_type, _time FROM Messages WHERE sms_type = ?", 55},
      {"SELECT name, chat_id FROM suggested_contacts "
       "WHERE chat_id != ? ORDER BY upper(name) LIMIT 10",
       30},
      {"SELECT conversation_id, first_name FROM "
       "conversation_participants_view WHERE conversation_id = ? AND "
       "active = 1",
       75},
      {"UPDATE Messages SET status = 4 WHERE _id = 17", 3},  // not a SELECT
  };
  for (const Entry& e : entries) loader.AddSql(e.sql, e.count);

  DatasetSummary stats = loader.Summary("quickstart");
  std::printf("Loaded %llu SELECT queries (%llu distinct templates, "
              "%llu non-SELECT skipped)\n",
              static_cast<unsigned long long>(stats.num_queries),
              static_cast<unsigned long long>(stats.num_distinct_no_const),
              static_cast<unsigned long long>(stats.num_non_select));

  // 2. Compress: partition the log (any ClustererRegistry backend) and
  //    summarize each partition (any EncoderRegistry backend — "naive"
  //    here; try "refined" or "pattern").
  QueryLog log = loader.TakeLog();
  LogROptions options;
  options.method = ClusteringMethod::kKMeansEuclidean;
  options.num_clusters = 3;
  options.encoder = "naive";
  LogRSummary summary = Compress(log, options);

  // All analytics go through the WorkloadModel facade — the same calls
  // work for every encoder.
  const WorkloadModel& model = summary.Model();
  std::printf("LogR summary [%s]: %zu clusters, Reproduction Error %.4f "
              "nats, Total Verbosity %zu\n",
              model.EncoderName(), model.NumComponents(), model.Error(),
              model.TotalVerbosity());

  // 3. Query the summary: how many queries filter on status = ?
  //    (this is the statistic an index advisor needs — Sec. 2).
  Feature status_filter{FeatureClause::kWhere, "status = ?"};
  FeatureId f = log.vocabulary().Find(status_filter);
  if (f != Vocabulary::kNotFound) {
    FeatureVec pattern({f});
    double estimated = model.EstimateCount(pattern);
    std::uint64_t truth = log.CountContaining(pattern);
    std::printf("est[ #queries with %s ] = %.1f   (true: %llu)\n",
                status_filter.ToString().c_str(), estimated,
                static_cast<unsigned long long>(truth));
  }

  // 4. The summary also answers co-occurrence questions the raw marginals
  //    cannot: how often do status = ? and sms_type = ? appear together?
  Feature sms_filter{FeatureClause::kWhere, "sms_type = ?"};
  FeatureId g = log.vocabulary().Find(sms_filter);
  if (f != Vocabulary::kNotFound && g != Vocabulary::kNotFound) {
    FeatureVec both({f, g});
    std::printf("est[ #queries with both filters ] = %.1f   (true: %llu)\n",
                model.EstimateCount(both),
                static_cast<unsigned long long>(log.CountContaining(both)));
  }
  return 0;
}
